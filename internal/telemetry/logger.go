package telemetry

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level is a log severity. Messages below the logger's minimum are
// discarded before any formatting work happens.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "DEBUG"
	case LevelInfo:
		return "INFO"
	case LevelWarn:
		return "WARN"
	case LevelError:
		return "ERROR"
	}
	return fmt.Sprintf("LEVEL(%d)", int32(l))
}

// ParseLevel maps a flag string to a Level (case-insensitive).
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("telemetry: unknown log level %q", s)
}

// Logger is a minimal leveled structured logger: one line per record,
// `<RFC3339 time> <LEVEL> <msg> k=v k=v …`. A nil *Logger discards
// everything, so components can log unconditionally. Safe for concurrent
// use; the output writer sees whole lines.
type Logger struct {
	mu     sync.Mutex
	w      io.Writer
	min    atomic.Int32
	fields string // pre-rendered " k=v" pairs from With
	now    func() time.Time
}

// NewLogger writes records at or above min to w.
func NewLogger(w io.Writer, min Level) *Logger {
	l := &Logger{w: w, now: time.Now}
	l.min.Store(int32(min))
	return l
}

// SetLevel changes the minimum level at runtime.
func (l *Logger) SetLevel(min Level) {
	if l == nil {
		return
	}
	l.min.Store(int32(min))
}

// With returns a logger that appends the given key/value pairs to every
// record. A nil receiver stays nil.
func (l *Logger) With(kv ...any) *Logger {
	if l == nil {
		return nil
	}
	child := &Logger{w: l.w, fields: l.fields + renderKV(kv), now: l.now}
	child.min.Store(l.min.Load())
	return child
}

// Enabled reports whether a record at level would be written.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && int32(level) >= l.min.Load()
}

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(level Level, msg string, kv []any) {
	if !l.Enabled(level) {
		return
	}
	var b strings.Builder
	b.WriteString(l.now().UTC().Format(time.RFC3339Nano))
	b.WriteByte(' ')
	b.WriteString(level.String())
	b.WriteByte(' ')
	b.WriteString(msg)
	b.WriteString(l.fields)
	b.WriteString(renderKV(kv))
	b.WriteByte('\n')
	l.mu.Lock()
	io.WriteString(l.w, b.String()) //nolint:errcheck
	l.mu.Unlock()
}

// renderKV formats pairs as " k=v"; values that need quoting get %q. An
// odd trailing key is rendered with the value "(MISSING)".
func renderKV(kv []any) string {
	if len(kv) == 0 {
		return ""
	}
	var b strings.Builder
	for i := 0; i < len(kv); i += 2 {
		key := fmt.Sprint(kv[i])
		var val string
		if i+1 < len(kv) {
			val = fmt.Sprint(kv[i+1])
		} else {
			val = "(MISSING)"
		}
		if strings.ContainsAny(val, " \t\n\"=") {
			val = fmt.Sprintf("%q", val)
		}
		b.WriteByte(' ')
		b.WriteString(key)
		b.WriteByte('=')
		b.WriteString(val)
	}
	return b.String()
}
