package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/cip-fl/cip/internal/tensor"
)

// TestBlendAlwaysInRange: both channels stay inside [lo, hi] for any
// x, t, α — the "clipped within the range of x" guarantee of Eq. 2.
func TestBlendAlwaysInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		alpha := r.Float64() * 1.5 // even beyond the paper's [0,1] range
		n, ss := 1+r.Intn(4), 1+r.Intn(20)
		x := tensor.New(n, ss)
		tp := tensor.New(ss)
		x.RandUniform(r, 0, 1)
		tp.RandUniform(r, 0, 1)
		b := Blend(x, tp, alpha, 0, 1)
		for i := range b.C1.Data {
			if b.C1.Data[i] < 0 || b.C1.Data[i] > 1 || b.C2.Data[i] < 0 || b.C2.Data[i] > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// TestBlendAlphaZeroIsIdentityPair: α = 0 means both channels equal x —
// CIP degenerates to an undefended dual-view model.
func TestBlendAlphaZeroIsIdentityPair(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := tensor.New(2, 6)
	tp := tensor.New(6)
	x.RandUniform(rng, 0, 1)
	tp.RandUniform(rng, 0, 1)
	b := Blend(x, tp, 0, 0, 1)
	if !tensor.Equal(b.C1, x, 0) || !tensor.Equal(b.C2, x, 0) {
		t.Fatal("alpha=0 blend should reproduce x on both channels")
	}
}

// TestBlendAlphaOneChannelOneIsT: α = 1 makes channel 1 exactly t — the
// original sample vanishes from that channel.
func TestBlendAlphaOneChannelOneIsT(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := tensor.New(3, 4)
	tp := tensor.New(4)
	x.RandUniform(rng, 0, 1)
	tp.RandUniform(rng, 0, 1)
	b := Blend(x, tp, 1, 0, 1)
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if b.C1.At(i, j) != tp.Data[j] {
				t.Fatalf("alpha=1 channel 1 should equal t at (%d,%d)", i, j)
			}
		}
	}
}

// TestBlendAlgebraicIdentities checks the Eq. 2 blend algebra with the
// clip range wide enough that nothing saturates: the channel mean
// recovers the sample, (C1+C2)/2 == x, and the scaled channel difference
// recovers the perturbation residual, (C2−C1)/(2α) == x − t. These are
// the invariants the dual-channel model implicitly relies on: x is
// reconstructible only with both channels, and t only with α.
func TestBlendAlgebraicIdentities(t *testing.T) {
	const tol = 1e-9
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// α covers the paper's (0, 1] plus the degenerate edges 0 and 1.
		alphas := []float64{0, 1, r.Float64()}
		n, ss := 1+r.Intn(4), 1+r.Intn(20)
		x := tensor.New(n, ss)
		tp := tensor.New(ss)
		x.RandUniform(r, -3, 3)
		tp.RandUniform(r, -3, 3)
		for _, alpha := range alphas {
			// lo/hi far beyond any blend value, so no element clips.
			b := Blend(x, tp, alpha, -1e12, 1e12)
			for bi := 0; bi < n; bi++ {
				off := bi * ss
				for j := 0; j < ss; j++ {
					c1, c2 := b.C1.Data[off+j], b.C2.Data[off+j]
					xv, tv := x.Data[off+j], tp.Data[j]
					if mean := (c1 + c2) / 2; mean < xv-tol || mean > xv+tol {
						t.Logf("alpha=%g: (C1+C2)/2 = %g, want x = %g", alpha, mean, xv)
						return false
					}
					if alpha == 0 {
						continue // difference identity is 0/0 at α = 0
					}
					want := xv - tv
					if diff := (c2 - c1) / (2 * alpha); diff < want-tol || diff > want+tol {
						t.Logf("alpha=%g: (C2-C1)/(2α) = %g, want x-t = %g", alpha, diff, want)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestBlendSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for perturbation size mismatch")
		}
	}()
	Blend(tensor.New(2, 4), tensor.New(3), 0.5, 0, 1)
}

func TestWithTDoesNotMutateOriginal(t *testing.T) {
	dual := newTestDual(30, 3)
	pert := NewPerturbation(31, []int{2, 6, 6}, 0, 1)
	m := NewCIPModel(dual, pert.T, 0.5)
	origT := m.T.Clone()
	other := m.WithT(m.ZeroT())
	other.T.Fill(0.77)
	if !tensor.Equal(m.T, origT, 0) {
		t.Fatal("WithT leaked mutation into the original model's T")
	}
	if m.Alpha != other.Alpha || m.Lo != other.Lo || m.Hi != other.Hi {
		t.Fatal("WithT should copy blending configuration")
	}
}

func TestCIPModelForwardDeterministicEval(t *testing.T) {
	dual := newTestDual(32, 3)
	pert := NewPerturbation(33, []int{2, 6, 6}, 0, 1)
	m := NewCIPModel(dual, pert.T, 0.5)
	x := tensor.New(2, 2, 6, 6)
	x.RandUniform(rand.New(rand.NewSource(34)), 0, 1)
	a, _ := m.Forward(x, false)
	b, _ := m.Forward(x, false)
	if !tensor.Equal(a, b, 0) {
		t.Fatal("eval-mode forward must be deterministic")
	}
}
