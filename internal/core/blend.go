// Package core implements CIP (Client-level Input Perturbation), the
// paper's defense: a per-client secret perturbation t blended into every
// training and inference input (Eq. 2), a dual-channel model sharing one
// backbone (Fig. 3), perturbation generation by loss minimization (Step I,
// Eq. 3), and model learning that simultaneously fits blended data and
// pushes the loss on unblended originals up (Step II, Eq. 4).
package core

import (
	"fmt"
	"math/rand"

	"github.com/cip-fl/cip/internal/tensor"
)

// Blended is the pair of blend channels of Eq. 2 together with the
// clipping masks needed to backpropagate through the clip.
type Blended struct {
	// C1 = clip((1-α)·x + α·t), C2 = clip((1+α)·x − α·t).
	C1, C2 *tensor.Tensor
	// Pass1[i] is true when C1's element i was not clipped (gradient
	// flows); likewise Pass2 for C2.
	Pass1, Pass2 []bool
}

// Blend applies the paper's blending function (Eq. 2) to a batch x of
// shape [N, ...] using the sample-shaped perturbation t, clipping both
// channels into [lo, hi] ("clipped within the range of x").
func Blend(x, t *tensor.Tensor, alpha, lo, hi float64) *Blended {
	n := x.Shape[0]
	ss := x.Size() / n
	if t.Size() != ss {
		panic(fmt.Sprintf("core: perturbation size %d does not match sample size %d", t.Size(), ss))
	}
	c1 := tensor.New(x.Shape...)
	c2 := tensor.New(x.Shape...)
	p1 := make([]bool, x.Size())
	p2 := make([]bool, x.Size())
	for b := 0; b < n; b++ {
		off := b * ss
		for j := 0; j < ss; j++ {
			xv := x.Data[off+j]
			tv := t.Data[j]
			v1 := (1-alpha)*xv + alpha*tv
			v2 := (1+alpha)*xv - alpha*tv
			if v1 < lo {
				v1 = lo
			} else if v1 > hi {
				v1 = hi
			} else {
				p1[off+j] = true
			}
			if v2 < lo {
				v2 = lo
			} else if v2 > hi {
				v2 = hi
			} else {
				p2[off+j] = true
			}
			c1.Data[off+j] = v1
			c2.Data[off+j] = v2
		}
	}
	return &Blended{C1: c1, C2: c2, Pass1: p1, Pass2: p2}
}

// Perturbation is a client's secret input perturbation t, together with
// the seed it was initialized from. The seed matters to the adaptive
// Knowledge-1 attack (Table VIII), which assumes the initialization seed
// leaks while the optimized t stays secret.
type Perturbation struct {
	T    *tensor.Tensor
	Seed int64
}

// NewPerturbation initializes t as random input from the given seed,
// uniform over [lo, hi] — "we initialize the perturbation t as some random
// input" (§III-B).
func NewPerturbation(seed int64, shape []int, lo, hi float64) *Perturbation {
	t := tensor.New(shape...)
	t.RandUniform(rand.New(rand.NewSource(seed)), lo, hi)
	return &Perturbation{T: t, Seed: seed}
}

// NewPerturbationLike initializes a perturbation matching another's shape
// but from a different seed (adaptive attacks generate these).
func NewPerturbationLike(seed int64, other *Perturbation, lo, hi float64) *Perturbation {
	return NewPerturbation(seed, other.T.Shape, lo, hi)
}

// BlendSeed deterministically mixes a base seed with a client index so
// every FL client gets a distinct, reproducible perturbation.
func BlendSeed(base int64, clientID int) int64 {
	return base*1000003 + int64(clientID)*7919
}
