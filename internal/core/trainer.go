package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/nn"
	"github.com/cip-fl/cip/internal/rng"
	"github.com/cip-fl/cip/internal/tensor"
)

// TrainConfig carries CIP's hyperparameters. The paper's defaults are
// α∈[0.1,0.9] (0.9 for strong protection), λ_t ∈ [1e-12, 1e-3],
// λ_m ∈ [1e-12, 1e-6], perturbation learning rate 1e-2 (internal) or 1e-3
// (external); see Tables I and II.
type TrainConfig struct {
	Alpha   float64
	LambdaT float64 // L1 weight on t in Eq. 3
	LambdaM float64 // original-loss weight in Eq. 4

	// OriginalLossCap bounds the Eq. 4 maximization: the −λ_m gradient is
	// applied only while the original-query loss is below this level, so
	// member queries are pushed up to non-member territory and no further.
	// This realizes the paper's stated purpose for λ_m — "to avoid
	// abnormally high loss on original data" — as an explicit control
	// loop, which is far more stable at our scale than an always-on push.
	// Zero selects the automatic cap of 1.25·ln(numClasses), just above
	// the random-guess loss.
	OriginalLossCap float64

	// PerturbLR is the SGD rate for Step I updates of t.
	PerturbLR float64
	// PerturbEpochs is how many Step I passes run per round (default 1).
	PerturbEpochs int

	BatchSize   int
	LocalEpochs int
	LR          func(round int) float64
	Momentum    float64
	Augment     bool
	AugmentPad  int

	// ClipNorm bounds the global gradient L2 norm of each Step II update.
	// The α=0.9 blended task occasionally produces exploding batches on
	// small backbones; clipping makes training robust across seeds.
	// Zero selects the default of 5; negative disables clipping.
	ClipNorm float64

	// Metrics, when non-nil, receives the trainer's telemetry (Step I/II
	// losses, original-CE loss, epoch wall time). Nil disables recording.
	Metrics *Metrics
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.PerturbLR <= 0 {
		c.PerturbLR = 1e-2
	}
	if c.PerturbEpochs <= 0 {
		c.PerturbEpochs = 1
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.LocalEpochs <= 0 {
		c.LocalEpochs = 1
	}
	if c.LR == nil {
		c.LR = func(int) float64 { return 0.05 }
	}
	if c.AugmentPad <= 0 {
		c.AugmentPad = 1
	}
	if c.ClipNorm == 0 {
		c.ClipNorm = 5
	}
	return c
}

// StepIGeneratePerturbation performs one pass of Step I (Eq. 3): holding
// the model fixed, update t by SGD to minimize the blended training loss
// plus the λ_t·|t|₁ magnitude penalty. The updated t stays clipped to the
// valid input range. Returns the mean blended batch loss observed.
func StepIGeneratePerturbation(m *CIPModel, data *datasets.Dataset, cfg TrainConfig, rng *rand.Rand) float64 {
	cfg = cfg.withDefaults()
	m.AccumTGrad = true
	defer func() { m.AccumTGrad = false }()

	var sum float64
	batches := 0
	for e := 0; e < cfg.PerturbEpochs; e++ {
		data.Shuffle(rng)
		for start := 0; start < data.Len(); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > data.Len() {
				end = data.Len()
			}
			x, y := data.Batch(start, end)
			if cfg.Augment {
				x = datasets.AugmentBatch(rng, x, data.In, cfg.AugmentPad)
			}
			m.ZeroTGrad()
			nn.ZeroGrads(m.Params()) // parameter grads are discarded in Step I
			logits, cache := m.Forward(x, true)
			res := nn.SoftmaxCrossEntropy(logits, y)
			m.Backward(cache, res.Grad)

			for j := range m.T.Data {
				g := m.TGrad.Data[j]
				// Subgradient of λ_t·|t|₁.
				switch {
				case m.T.Data[j] > 0:
					g += cfg.LambdaT
				case m.T.Data[j] < 0:
					g -= cfg.LambdaT
				}
				m.T.Data[j] -= cfg.PerturbLR * g
			}
			tensor.ClampInPlace(m.T, m.Lo, m.Hi)
			sum += res.Loss
			batches++
		}
	}
	nn.ZeroGrads(m.Params())
	if batches == 0 {
		return 0
	}
	mean := sum / float64(batches)
	cfg.Metrics.observeStep1(mean)
	return mean
}

// StepIILearnModel performs one epoch of Step II (Eq. 4): update the model
// parameters to minimize the loss on blended data while maximizing, with
// weight λ_m, the loss on adversarial queries of the original samples.
// Batches alternate between the zero-perturbation query (a naive external
// attacker) and a freshly drawn random perturbation (an adaptive attacker
// guessing t′, including a malicious client substituting its own — the
// Knowledge-1/3 adversaries), so membership is concealed under ANY
// perturbation other than the secret t. Returns the mean blended batch loss.
func StepIILearnModel(m *CIPModel, data *datasets.Dataset, cfg TrainConfig,
	opt nn.Optimizer, rng *rand.Rand) float64 {
	cfg = cfg.withDefaults()
	zeroQuery := m.WithT(m.ZeroT())
	guessT := m.ZeroT()
	guessQuery := m.WithT(guessT)

	var sum, origSum float64
	batches, origBatches := 0, 0
	data.Shuffle(rng)
	for start := 0; start < data.Len(); start += cfg.BatchSize {
		end := start + cfg.BatchSize
		if end > data.Len() {
			end = data.Len()
		}
		x, y := data.Batch(start, end)
		if cfg.Augment {
			x = datasets.AugmentBatch(rng, x, data.In, cfg.AugmentPad)
		}
		nn.ZeroGrads(m.Params())

		// Term 1: minimize CE over D_t (weight +1).
		logits, cache := m.Forward(x, true)
		res := nn.SoftmaxCrossEntropy(logits, y)
		m.Backward(cache, res.Grad)

		// Term 2: maximize CE over original queries (weight −λ_m),
		// per-sample capped — a member query is pushed up only while its
		// loss is still below the non-member reference level, so member
		// outputs come to "assemble other non-members" (§III) without the
		// runaway loss the paper's λ_m balancing guards against.
		if cfg.LambdaM != 0 {
			query := zeroQuery
			if batches%2 == 1 {
				guessT.RandUniform(rng, 0, 1)
				query = guessQuery
			}
			logits0, cache0 := query.Forward(x, true)
			res0 := nn.SoftmaxCrossEntropy(logits0, y)
			origSum += res0.Loss
			origBatches++
			cap := cfg.OriginalLossCap
			if cap <= 0 {
				cap = 1.25 * math.Log(float64(logits0.Shape[1]))
			}
			grad0 := res0.Grad
			kept := 0
			k := logits0.Shape[1]
			for i, l := range res0.PerSample {
				if l < cap {
					kept++
				} else {
					for j := 0; j < k; j++ {
						grad0.Data[i*k+j] = 0
					}
				}
			}
			if kept > 0 {
				query.Backward(cache0, tensor.Scale(grad0, -cfg.LambdaM))
			}
		}

		if cfg.ClipNorm > 0 {
			nn.ClipGradNorm(m.Params(), cfg.ClipNorm)
		}
		opt.Step(m.Params())
		sum += res.Loss
		batches++
	}
	if batches == 0 {
		return 0
	}
	mean := sum / float64(batches)
	var origMean float64
	if origBatches > 0 {
		origMean = origSum / float64(origBatches)
	}
	cfg.Metrics.observeStep2(mean, origMean, origBatches > 0)
	return mean
}

// Client is a CIP-defended federated-learning participant. Each round it
// alternates Step I (perturbation update) and Step II (model update), per
// §III-B, and reports only the model parameters — t never leaves the
// client.
type Client struct {
	id   int
	m    *CIPModel
	pert *Perturbation
	data *datasets.Dataset
	cal  *datasets.Dataset // held-out calibration split (may be nil)
	cfg  TrainConfig
	opt  *nn.SGD
	rng  *rand.Rand
	// src is non-nil for clients built with NewStatefulClient: the
	// serializable source behind rng, required by CaptureState.
	src *rng.Source
}

// calibrationFraction of the local data is held out of training and used
// to estimate the non-member loss level the Eq. 4 maximization targets:
// held-out samples are in-distribution but not memorized, i.e. they behave
// exactly like non-members under zero-perturbation queries.
const calibrationFraction = 0.1

// NewClient builds a CIP client around an existing dual-channel model.
// pertSeed initializes the client's secret perturbation.
func NewClient(id int, dual *DualChannelModel, data *datasets.Dataset,
	cfg TrainConfig, pertSeed int64, rng *rand.Rand) *Client {
	cfg = cfg.withDefaults()
	shape := sampleShape(data)
	pert := NewPerturbation(pertSeed, shape, 0, 1)
	m := NewCIPModel(dual, pert.T, cfg.Alpha)

	var cal *datasets.Dataset
	train := data
	if n := int(calibrationFraction * float64(data.Len())); n >= 4 {
		train, cal = data.Split(data.Len() - n)
	}
	return &Client{
		id:   id,
		m:    m,
		pert: pert,
		data: train,
		cal:  cal,
		cfg:  cfg,
		opt:  &nn.SGD{LR: cfg.LR(0), Momentum: cfg.Momentum},
		rng:  rng,
	}
}

// NewStatefulClient is NewClient for durable federations: the client's RNG
// runs on a serializable source seeded with rngSeed and the training
// shard's sample order is tracked, so CaptureState/RestoreState can move
// the client's exact training position — including the secret perturbation
// t, which evolves every round but never leaves the client — across
// process death.
func NewStatefulClient(id int, dual *DualChannelModel, data *datasets.Dataset,
	cfg TrainConfig, pertSeed, rngSeed int64) *Client {
	r, src := rng.New(rngSeed)
	c := NewClient(id, dual, data, cfg, pertSeed, r)
	c.src = src
	c.data.TrackOrder()
	return c
}

// cipClientState is the gob layout of a CIP client's captured state.
type cipClientState struct {
	T        []float64
	Order    []int
	Velocity [][]float64
	RNG      uint64
}

// CaptureState implements fl.StatefulClient.
func (c *Client) CaptureState() ([]byte, error) {
	if c.src == nil {
		return nil, fmt.Errorf("core: client %d was not built with NewStatefulClient", c.id)
	}
	st := cipClientState{
		T:        append([]float64(nil), c.pert.T.Data...),
		Order:    c.data.Order(),
		Velocity: c.opt.CaptureVelocity(c.m.Params()),
		RNG:      c.src.State(),
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&st); err != nil {
		return nil, fmt.Errorf("core: encoding client %d state: %w", c.id, err)
	}
	return buf.Bytes(), nil
}

// RestoreState implements fl.StatefulClient.
func (c *Client) RestoreState(blob []byte) error {
	if c.src == nil {
		return fmt.Errorf("core: client %d was not built with NewStatefulClient", c.id)
	}
	var st cipClientState
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&st); err != nil {
		return fmt.Errorf("core: decoding client %d state: %w", c.id, err)
	}
	if len(st.T) != len(c.pert.T.Data) {
		return fmt.Errorf("core: client %d snapshot has %d perturbation values, want %d",
			c.id, len(st.T), len(c.pert.T.Data))
	}
	// pert.T backs the CIP model's perturbation channel, so this restores
	// the model's view of t too.
	copy(c.pert.T.Data, st.T)
	if st.Order != nil {
		if err := c.data.ApplyOrder(st.Order); err != nil {
			return fmt.Errorf("core: client %d: %w", c.id, err)
		}
	}
	if err := c.opt.RestoreVelocity(c.m.Params(), st.Velocity); err != nil {
		return fmt.Errorf("core: client %d: %w", c.id, err)
	}
	c.src.SetState(st.RNG)
	return nil
}

func sampleShape(d *datasets.Dataset) []int {
	if d.In.IsImage() {
		return []int{d.In.C, d.In.H, d.In.W}
	}
	return []int{d.In.C}
}

// ID implements fl.Client.
func (c *Client) ID() int { return c.id }

// NumSamples implements fl.Client.
func (c *Client) NumSamples() int { return c.data.Len() }

// Model exposes the client's CIP model (evaluation and attacks need it).
func (c *Client) Model() *CIPModel { return c.m }

// Perturbation exposes the client's secret t. Only the evaluation harness
// reads this — in a deployment it never leaves the client.
func (c *Client) Perturbation() *Perturbation { return c.pert }

// Data exposes the client's local TRAINING set — the ground-truth member
// set for attack evaluation. The calibration split is not trained on and
// therefore not a member set.
func (c *Client) Data() *datasets.Dataset { return c.data }

// Calibration exposes the held-out calibration split (nil for very small
// shards).
func (c *Client) Calibration() *datasets.Dataset { return c.cal }

// Config returns the client's training configuration.
func (c *Client) Config() TrainConfig { return c.cfg }

// TrainLocal implements fl.Client: load the global parameters, run Step I
// then Step II, and return the updated model parameters (not t).
func (c *Client) TrainLocal(round int, global []float64) (fl.Update, error) {
	if err := nn.SetFlatParams(c.m.Params(), global); err != nil {
		return fl.Update{}, fmt.Errorf("core: client %d: %w", c.id, err)
	}
	c.opt.LR = c.cfg.LR(round)
	StepIGeneratePerturbation(c.m, c.data, c.cfg, c.rng)

	// Self-calibrate the Eq. 4 target: the zero-query loss of held-out
	// (non-memorized) local samples estimates the non-member loss level.
	cfg := c.cfg
	if cfg.LambdaM != 0 && cfg.OriginalLossCap <= 0 && c.cal != nil {
		zero := c.m.WithT(c.m.ZeroT())
		cfg.OriginalLossCap = fl.MeanLoss(zero, c.cal, 64)
	}
	var loss float64
	for e := 0; e < cfg.LocalEpochs; e++ {
		epochStart := time.Now()
		loss = StepIILearnModel(c.m, c.data, cfg, c.opt, c.rng)
		cfg.Metrics.observeEpoch(epochStart)
	}
	cfg.Metrics.observeRound()
	return fl.Update{
		Params:     nn.FlattenParams(c.m.Params()),
		NumSamples: c.data.Len(),
		TrainLoss:  loss,
	}, nil
}

var (
	_ fl.Client         = (*Client)(nil)
	_ fl.StatefulClient = (*Client)(nil)
)
