package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/metrics"
	"github.com/cip-fl/cip/internal/model"
	"github.com/cip-fl/cip/internal/nn"
	"github.com/cip-fl/cip/internal/tensor"
)

func TestBlendAverageRecoversInput(t *testing.T) {
	// (C1 + C2)/2 == x whenever neither channel clips — the mechanism by
	// which the dual channel preserves the original sample's information.
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		alpha := r.Float64()
		x := tensor.New(2, 4)
		tp := tensor.New(4)
		// Keep x and t near 0.5 so no clipping occurs for any α ≤ 1.
		x.RandUniform(r, 0.45, 0.55)
		tp.RandUniform(r, 0.45, 0.55)
		b := Blend(x, tp, alpha, 0, 1)
		for i := range x.Data {
			if math.Abs((b.C1.Data[i]+b.C2.Data[i])/2-x.Data[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestBlendChannelsFormula(t *testing.T) {
	x := tensor.FromSlice([]float64{0.5}, 1, 1)
	tp := tensor.FromSlice([]float64{0.7}, 1)
	b := Blend(x, tp, 0.5, 0, 1)
	// c1 = 0.5*0.5 + 0.5*0.7 = 0.6 ; c2 = 1.5*0.5 − 0.5*0.7 = 0.4.
	if math.Abs(b.C1.Data[0]-0.6) > 1e-12 || math.Abs(b.C2.Data[0]-0.4) > 1e-12 {
		t.Fatalf("blend = (%v, %v), want (0.6, 0.4)", b.C1.Data[0], b.C2.Data[0])
	}
	if !b.Pass1[0] || !b.Pass2[0] {
		t.Fatal("unclipped elements should pass gradient")
	}
}

func TestBlendClipsAndMasks(t *testing.T) {
	x := tensor.FromSlice([]float64{1.0}, 1, 1)
	tp := tensor.FromSlice([]float64{0.0}, 1)
	b := Blend(x, tp, 0.5, 0, 1)
	// c2 = 1.5*1.0 − 0 = 1.5 → clipped to 1, mask blocked.
	if b.C2.Data[0] != 1 {
		t.Fatalf("c2 = %v, want clipped to 1", b.C2.Data[0])
	}
	if b.Pass2[0] {
		t.Fatal("clipped element must not pass gradient")
	}
}

func TestPerturbationDeterministicBySeed(t *testing.T) {
	a := NewPerturbation(5, []int{3, 2, 2}, 0, 1)
	b := NewPerturbation(5, []int{3, 2, 2}, 0, 1)
	c := NewPerturbation(6, []int{3, 2, 2}, 0, 1)
	if !tensor.Equal(a.T, b.T, 0) {
		t.Fatal("same seed produced different perturbations")
	}
	if tensor.Equal(a.T, c.T, 0) {
		t.Fatal("different seeds produced identical perturbations")
	}
	if a.T.Min() < 0 || a.T.Max() > 1 {
		t.Fatal("perturbation out of [0,1]")
	}
}

func TestBlendSeedDistinctPerClient(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 50; i++ {
		s := BlendSeed(42, i)
		if seen[s] {
			t.Fatalf("duplicate seed for client %d", i)
		}
		seen[s] = true
	}
}

var testIn = model.Input{C: 2, H: 6, W: 6}

func newTestDual(seed int64, classes int) *DualChannelModel {
	return NewDualChannelModel(rand.New(rand.NewSource(seed)), model.VGG, testIn, classes)
}

func TestDualChannelShapesAndParamOverhead(t *testing.T) {
	dual := newTestDual(1, 5)
	x1 := tensor.New(3, 2, 6, 6)
	x2 := tensor.New(3, 2, 6, 6)
	logits, _ := dual.Forward(x1, x2, false)
	if logits.Shape[0] != 3 || logits.Shape[1] != 5 {
		t.Fatalf("dual logits shape = %v, want [3 5]", logits.Shape)
	}

	single := model.NewClassifier(rand.New(rand.NewSource(1)), model.VGG, testIn, 5)
	diff := dual.NumParams() - single.NumParams()
	// The only extra parameters are the head's second half: FeatDim*classes.
	want := dual.Backbone.FeatDim * 5
	if diff != want {
		t.Fatalf("dual-channel overhead = %d params, want %d", diff, want)
	}
	// Overhead stays a modest fraction of the model. (Table XI reports
	// +0.87% at ResNet-50 scale, where the head is a vanishing share of
	// 24M parameters; at tiny-backbone scale the same head-only overhead
	// is proportionally larger.)
	if rel := float64(diff) / float64(single.NumParams()); rel > 0.3 {
		t.Fatalf("relative overhead %v unexpectedly large", rel)
	}
}

func TestCIPModelGradCheckParamsAndInput(t *testing.T) {
	dual := newTestDual(2, 3)
	pert := NewPerturbation(7, []int{2, 6, 6}, 0.3, 0.7)
	m := NewCIPModel(dual, pert.T, 0.4)
	x := tensor.New(2, 2, 6, 6)
	x.RandUniform(rand.New(rand.NewSource(3)), 0.35, 0.65) // stay off clip boundaries
	labels := []int{0, 2}
	if rel := nn.GradCheck(m, x, labels, 131); rel > 1e-3 {
		t.Fatalf("CIPModel grad check max relative error %v", rel)
	}
}

func TestCIPModelTGradMatchesFiniteDifference(t *testing.T) {
	dual := newTestDual(4, 3)
	pert := NewPerturbation(8, []int{2, 6, 6}, 0.3, 0.7)
	m := NewCIPModel(dual, pert.T, 0.4)
	m.AccumTGrad = true
	x := tensor.New(2, 2, 6, 6)
	x.RandUniform(rand.New(rand.NewSource(5)), 0.35, 0.65)
	labels := []int{1, 2}

	m.ZeroTGrad()
	nn.ZeroGrads(m.Params())
	logits, cache := m.Forward(x, true)
	res := nn.SoftmaxCrossEntropy(logits, labels)
	m.Backward(cache, res.Grad)

	lossAt := func() float64 {
		lg, _ := m.Forward(x, true)
		return nn.SoftmaxCrossEntropy(lg, labels).Loss
	}
	const h = 1e-5
	maxRel := 0.0
	for j := 0; j < m.T.Size(); j += 17 {
		orig := m.T.Data[j]
		m.T.Data[j] = orig + h
		lp := lossAt()
		m.T.Data[j] = orig - h
		lm := lossAt()
		m.T.Data[j] = orig
		numeric := (lp - lm) / (2 * h)
		analytic := m.TGrad.Data[j]
		denom := math.Max(1e-6, math.Abs(numeric)+math.Abs(analytic))
		if rel := math.Abs(numeric-analytic) / denom; rel > maxRel {
			maxRel = rel
		}
	}
	if maxRel > 1e-3 {
		t.Fatalf("TGrad finite-difference max relative error %v", maxRel)
	}
}

func testData(t *testing.T, seed int64) (*datasets.Dataset, *datasets.Dataset) {
	t.Helper()
	train, test, err := datasets.SyntheticImages(datasets.ImageConfig{
		Classes: 4, Train: 64, Test: 64, C: 2, H: 6, W: 6,
		Signal: 0.5, Noise: 0.2, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return train, test
}

func TestStepIReducesBlendedLoss(t *testing.T) {
	train, _ := testData(t, 1)
	dual := NewDualChannelModel(rand.New(rand.NewSource(1)), model.VGG, train.In, train.NumClasses)
	pert := NewPerturbation(2, []int{2, 6, 6}, 0, 1)
	m := NewCIPModel(dual, pert.T, 0.5)
	cfg := TrainConfig{Alpha: 0.5, PerturbLR: 0.05, BatchSize: 16, LambdaT: 1e-6}
	rng := rand.New(rand.NewSource(3))

	first := StepIGeneratePerturbation(m, train, cfg, rng)
	var last float64
	for i := 0; i < 10; i++ {
		last = StepIGeneratePerturbation(m, train, cfg, rng)
	}
	if last >= first {
		t.Fatalf("Step I did not reduce blended loss: %v -> %v", first, last)
	}
	if m.T.Min() < 0 || m.T.Max() > 1 {
		t.Fatalf("Step I left t outside [0,1]: [%v, %v]", m.T.Min(), m.T.Max())
	}
}

func TestStepIIReducesBlendedLoss(t *testing.T) {
	train, _ := testData(t, 2)
	dual := NewDualChannelModel(rand.New(rand.NewSource(4)), model.VGG, train.In, train.NumClasses)
	pert := NewPerturbation(5, []int{2, 6, 6}, 0, 1)
	m := NewCIPModel(dual, pert.T, 0.5)
	cfg := TrainConfig{Alpha: 0.5, BatchSize: 16, LambdaM: 1e-6}
	opt := &nn.SGD{LR: 0.08, Momentum: 0.9}
	rng := rand.New(rand.NewSource(6))

	first := StepIILearnModel(m, train, cfg, opt, rng)
	var last float64
	for i := 0; i < 12; i++ {
		last = StepIILearnModel(m, train, cfg, opt, rng)
	}
	if last > 0.7*first {
		t.Fatalf("Step II did not fit blended data: %v -> %v", first, last)
	}
}

// lossAUC scores the canonical loss-threshold MI attack: lower loss ⇒ more
// likely member; returns the attacker's ROC-AUC.
func lossAUC(net nn.Layer, members, nonMembers *datasets.Dataset) float64 {
	ml := fl.Losses(net, members, 64)
	nl := fl.Losses(net, nonMembers, 64)
	scores := make([]float64, 0, len(ml)+len(nl))
	labels := make([]bool, 0, len(ml)+len(nl))
	for _, l := range ml {
		scores = append(scores, -l)
		labels = append(labels, true)
	}
	for _, l := range nl {
		scores = append(scores, -l)
		labels = append(labels, false)
	}
	return metrics.ROCAUC(scores, labels)
}

func TestCIPFederationLearnsAndShiftsOriginalLoss(t *testing.T) {
	// Overfit regime (hard data, few samples) — where MI attacks bite and
	// the paper's Fig. 1 shift is visible.
	train, test, err := datasets.SyntheticImages(datasets.ImageConfig{
		Classes: 8, Train: 96, Test: 96, C: 2, H: 6, W: 6,
		Signal: 0.35, Noise: 0.45, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	const k = 2
	shards := datasets.PartitionIID(train, k, rand.New(rand.NewSource(7)))
	cfg := TrainConfig{
		Alpha: 0.9, LambdaT: 1e-6, LambdaM: 0.3,
		PerturbLR: 0.02, BatchSize: 16,
		LR: func(int) float64 { return 0.05 }, Momentum: 0.9,
	}
	clients := make([]fl.Client, k)
	cipClients := make([]*Client, k)
	var initial []float64
	for i := 0; i < k; i++ {
		dual := NewDualChannelModel(rand.New(rand.NewSource(10)), model.VGG, train.In, train.NumClasses)
		if initial == nil {
			initial = nn.FlattenParams(dual.Params())
		}
		c := NewClient(i, dual, shards[i], cfg, BlendSeed(99, i), rand.New(rand.NewSource(int64(20+i))))
		clients[i] = c
		cipClients[i] = c
	}
	srv := fl.NewServer(initial, clients...)
	if err := srv.Run(35); err != nil {
		t.Fatal(err)
	}

	// Load the global parameters into an evaluation dual model.
	evalDual := NewDualChannelModel(rand.New(rand.NewSource(10)), model.VGG, train.In, train.NumClasses)
	if err := nn.SetFlatParams(evalDual.Params(), srv.Global()); err != nil {
		t.Fatal(err)
	}

	c0 := cipClients[0]
	mTrue := NewCIPModel(evalDual, c0.Perturbation().T, cfg.Alpha)
	mZero := mTrue.WithT(mTrue.ZeroT())

	// The model must have memorized the blended members (overfit regime):
	// training accuracy under the true t well above test accuracy.
	trainAcc := fl.Evaluate(mTrue, c0.Data(), 64)
	testAcc := fl.Evaluate(mTrue, test, 64)
	if trainAcc < testAcc+0.2 {
		t.Fatalf("expected overfit regime, got train=%v test=%v", trainAcc, testAcc)
	}

	// Defense signature (Fig. 1 / Theorem 1): the loss-threshold attack
	// separates members well when it holds the secret t, but collapses
	// toward random guessing when it queries without t.
	aucTrue := lossAUC(mTrue, c0.Data(), test)
	aucZero := lossAUC(mZero, c0.Data(), test)
	if aucZero > 0.68 {
		t.Fatalf("attack AUC without t = %v, want ≤0.68 (near random)", aucZero)
	}
	if aucTrue < aucZero+0.1 {
		t.Fatalf("attack with the secret t (AUC %v) should far exceed without (AUC %v)",
			aucTrue, aucZero)
	}

	// Members queried without t must look lossier than with t (the shift).
	if lz, lt := fl.MeanLoss(mZero, c0.Data(), 64), fl.MeanLoss(mTrue, c0.Data(), 64); lz <= lt {
		t.Fatalf("zero-t member loss %v should exceed true-t member loss %v", lz, lt)
	}
}

func TestWithTSharesParameters(t *testing.T) {
	dual := newTestDual(11, 3)
	pert := NewPerturbation(12, []int{2, 6, 6}, 0, 1)
	m := NewCIPModel(dual, pert.T, 0.5)
	m2 := m.WithT(m.ZeroT())
	p1 := m.Params()
	p2 := m2.Params()
	if len(p1) != len(p2) {
		t.Fatal("WithT changed parameter count")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("WithT must share the underlying parameters")
		}
	}
}

func TestAdvantageRatioBound(t *testing.T) {
	// Theorem 1: when the guessed-perturbation loss exceeds the true one,
	// ε ≤ 1 — the adaptive attacker cannot gain advantage.
	rng := rand.New(rand.NewSource(13))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		lossTrue := r.Float64() * 3
		lossGuessed := lossTrue + r.Float64()*3 // ≥ lossTrue
		temp := 0.5 + r.Float64()*2
		eps := AdvantageRatio(lossTrue, lossGuessed, temp)
		return eps <= 1+1e-12 && eps > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Fatal(err)
	}
	if got := AdvantageRatio(1, 1, 2); math.Abs(got-1) > 1e-12 {
		t.Fatalf("equal losses should give ε=1, got %v", got)
	}
}

func TestAdversarialAdvantage(t *testing.T) {
	if got := AdversarialAdvantage(0.5); math.Abs(got-1) > 1e-12 {
		t.Errorf("Adv(0.5) = %v, want 1", got)
	}
	if got := AdversarialAdvantage(0.8); math.Abs(got-4) > 1e-12 {
		t.Errorf("Adv(0.8) = %v, want 4", got)
	}
	if got := AdversarialAdvantage(0); got != 0 {
		t.Errorf("Adv(0) = %v, want 0", got)
	}
	if got := AdversarialAdvantage(1); !math.IsInf(got, 1) {
		t.Errorf("Adv(1) = %v, want +Inf", got)
	}
}

func TestCIPClientImplementsFLClient(t *testing.T) {
	train, _ := testData(t, 4)
	dual := newTestDual(14, train.NumClasses)
	c := NewClient(3, dual, train, TrainConfig{Alpha: 0.3}, 77, rand.New(rand.NewSource(15)))
	if c.ID() != 3 {
		t.Fatal("client ID accessor wrong")
	}
	// 10% of the shard is held out for loss-target calibration.
	wantTrain := train.Len() - train.Len()/10
	if c.NumSamples() != wantTrain {
		t.Fatalf("NumSamples = %d, want %d (shard minus calibration split)",
			c.NumSamples(), wantTrain)
	}
	if c.Calibration() == nil || c.Calibration().Len() != train.Len()/10 {
		t.Fatal("calibration split missing or wrong size")
	}
	global := nn.FlattenParams(dual.Params())
	u, err := c.TrainLocal(0, global)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Params) != len(global) {
		t.Fatalf("update size %d, want %d", len(u.Params), len(global))
	}
	if u.TrainLoss <= 0 {
		t.Fatalf("train loss = %v, want > 0", u.TrainLoss)
	}
}
