package core

import (
	"math/rand"
	"testing"

	"github.com/cip-fl/cip/internal/model"
	"github.com/cip-fl/cip/internal/nn"
	"github.com/cip-fl/cip/internal/tensor"
)

// dualAdapter exposes DualChannelModel as a single-input nn.Layer so
// nn.GradCheck can probe it end to end without going through CIPModel's
// blending. The second channel is a fixed linear image of the first,
// x2 = 2x, so d loss/dx = g1 + 2·g2 — exercising BOTH backbone passes,
// the feature concat/split, and the shared-parameter accumulation.
type dualAdapter struct {
	m *DualChannelModel
}

type dualAdapterCache struct {
	c *DualCache
}

func (a dualAdapter) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, nn.Cache) {
	x2 := tensor.New(x.Shape...)
	for i, v := range x.Data {
		x2.Data[i] = 2 * v
	}
	logits, c := a.m.Forward(x, x2, train)
	return logits, dualAdapterCache{c: c}
}

func (a dualAdapter) Backward(cache nn.Cache, grad *tensor.Tensor) *tensor.Tensor {
	c := cache.(dualAdapterCache)
	g1, g2 := a.m.Backward(c.c, grad)
	out := tensor.New(g1.Shape...)
	for i := range out.Data {
		out.Data[i] = g1.Data[i] + 2*g2.Data[i]
	}
	return out
}

func (a dualAdapter) Params() []*nn.Param { return a.m.Params() }

// TestDualChannelModelGradCheck finite-differences the raw dual-channel
// model (Fig. 3) directly: previous coverage only reached it wrapped in
// CIPModel, which never propagates a distinct x2 gradient path because
// both channels derive from the same blend.
func TestDualChannelModelGradCheck(t *testing.T) {
	dual := newTestDual(40, 3)
	x := tensor.New(2, 2, 6, 6)
	x.RandUniform(rand.New(rand.NewSource(41)), 0.1, 0.9)
	if rel := nn.GradCheck(dualAdapter{dual}, x, []int{0, 2}, 131); rel > 1e-3 {
		t.Fatalf("dual-channel grad check max relative error %v", rel)
	}
}

// TestSingleChannelAdapterGradCheck runs the ablation variant through the
// same adapter; g2 must come back zero so the adapter reduces to g1.
func TestSingleChannelAdapterGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	single := NewSingleChannelModel(rng, model.VGG, testIn, 3)
	x := tensor.New(2, 2, 6, 6)
	x.RandUniform(rand.New(rand.NewSource(43)), 0.1, 0.9)
	if rel := nn.GradCheck(dualAdapter{single}, x, []int{1, 2}, 131); rel > 1e-3 {
		t.Fatalf("single-channel grad check max relative error %v", rel)
	}
}
