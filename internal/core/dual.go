package core

import (
	"math/rand"

	"github.com/cip-fl/cip/internal/model"
	"github.com/cip-fl/cip/internal/nn"
	"github.com/cip-fl/cip/internal/tensor"
)

// DualChannelModel is the paper's Fig. 3 architecture: both blend
// components pass through ONE shared backbone (two forward passes, shared
// weights), their feature vectors are concatenated, and a fully connected
// head produces the logits. Sharing the backbone is what keeps the
// parameter overhead at a fraction of a percent (Table XI): only the head
// doubles its input width.
type DualChannelModel struct {
	Backbone *model.Backbone
	Head     *nn.Dense // [classes, Channels*FeatDim]
	// Channels is 2 for the paper's architecture. 1 builds the
	// single-channel ablation (only the (1−α)x+αt component is used),
	// which the ablation experiment contrasts against the full design.
	Channels int
}

// NewDualChannelModel builds a dual-channel model over a fresh backbone of
// the given family.
func NewDualChannelModel(rng *rand.Rand, arch model.Arch, in model.Input, numClasses int) *DualChannelModel {
	bb := model.NewBackbone(rng, arch, in)
	return &DualChannelModel{
		Backbone: bb,
		Head:     nn.NewDense(rng, 2*bb.FeatDim, numClasses),
		Channels: 2,
	}
}

// NewSingleChannelModel builds the single-channel ablation: the same
// backbone family, but only the first blend component feeds the head.
func NewSingleChannelModel(rng *rand.Rand, arch model.Arch, in model.Input, numClasses int) *DualChannelModel {
	bb := model.NewBackbone(rng, arch, in)
	return &DualChannelModel{
		Backbone: bb,
		Head:     nn.NewDense(rng, bb.FeatDim, numClasses),
		Channels: 1,
	}
}

// DualCache carries both backbone pass caches plus the head cache.
type DualCache struct {
	bb1, bb2 nn.Cache
	head     nn.Cache
	featDim  int
	x2Shape  []int // retained in single-channel mode to shape the zero g2
}

// Forward runs both channels through the shared backbone and the head.
// In single-channel ablation mode only x1 is used.
func (m *DualChannelModel) Forward(x1, x2 *tensor.Tensor, train bool) (*tensor.Tensor, *DualCache) {
	f1, c1 := m.Backbone.Forward(x1, train)
	if m.channels() == 1 {
		logits, ch := m.Head.Forward(f1, train)
		return logits, &DualCache{bb1: c1, head: ch, featDim: m.Backbone.FeatDim, x2Shape: x2.Shape}
	}
	f2, c2 := m.Backbone.Forward(x2, train)
	joint := concatFeatures(f1, f2)
	logits, ch := m.Head.Forward(joint, train)
	return logits, &DualCache{bb1: c1, bb2: c2, head: ch, featDim: m.Backbone.FeatDim}
}

func (m *DualChannelModel) channels() int {
	if m.Channels == 1 {
		return 1
	}
	return 2
}

// Backward backpropagates the logit gradient through the head and both
// backbone passes (parameter gradients accumulate across the two passes,
// realizing the weight sharing) and returns the gradients with respect to
// each channel input. In single-channel mode g2 is zero.
func (m *DualChannelModel) Backward(cache *DualCache, grad *tensor.Tensor) (g1, g2 *tensor.Tensor) {
	jointGrad := m.Head.Backward(cache.head, grad)
	if m.channels() == 1 {
		g1 = m.Backbone.Backward(cache.bb1, jointGrad)
		return g1, tensor.New(cache.x2Shape...)
	}
	gf1, gf2 := splitFeatures(jointGrad, cache.featDim)
	g1 = m.Backbone.Backward(cache.bb1, gf1)
	g2 = m.Backbone.Backward(cache.bb2, gf2)
	return g1, g2
}

// Params returns the shared backbone parameters plus the head.
func (m *DualChannelModel) Params() []*nn.Param {
	return append(m.Backbone.Params(), m.Head.Params()...)
}

// NumParams returns the total scalar parameter count (Table XI).
func (m *DualChannelModel) NumParams() int { return nn.NumParams(m.Params()) }

func concatFeatures(a, b *tensor.Tensor) *tensor.Tensor {
	n, fa := a.Shape[0], a.Shape[1]
	fb := b.Shape[1]
	out := tensor.New(n, fa+fb)
	for i := 0; i < n; i++ {
		copy(out.Data[i*(fa+fb):], a.Data[i*fa:(i+1)*fa])
		copy(out.Data[i*(fa+fb)+fa:], b.Data[i*fb:(i+1)*fb])
	}
	return out
}

func splitFeatures(x *tensor.Tensor, fa int) (*tensor.Tensor, *tensor.Tensor) {
	n, tot := x.Shape[0], x.Shape[1]
	fb := tot - fa
	a := tensor.New(n, fa)
	b := tensor.New(n, fb)
	for i := 0; i < n; i++ {
		copy(a.Data[i*fa:], x.Data[i*tot:i*tot+fa])
		copy(b.Data[i*fb:], x.Data[i*tot+fa:(i+1)*tot])
	}
	return a, b
}
