package core

import (
	"github.com/cip-fl/cip/internal/nn"
	"github.com/cip-fl/cip/internal/tensor"
)

// CIPModel couples a dual-channel model with a perturbation and blending
// parameter so it presents the ordinary single-input nn.Layer interface:
// Forward(x) means "blend x with T per Eq. 2, then run the dual-channel
// network". The defending client holds a CIPModel with its secret t; an
// attacker querying "with original data" is modeled by WithT(zero), and an
// adaptive attacker guessing t′ by WithT(t′). All attack code therefore
// treats defended and undefended models uniformly.
type CIPModel struct {
	Alpha  float64
	Lo, Hi float64
	T      *tensor.Tensor
	Dual   *DualChannelModel

	// AccumTGrad, when set, makes Backward accumulate d(loss)/dT into
	// TGrad — Step I (Eq. 3) optimizes T through this.
	AccumTGrad bool
	TGrad      *tensor.Tensor
}

// NewCIPModel wraps dual with perturbation t and blending parameter alpha,
// clipping blended inputs into [0, 1] (the data range of every dataset in
// the evaluation).
func NewCIPModel(dual *DualChannelModel, t *tensor.Tensor, alpha float64) *CIPModel {
	return &CIPModel{
		Alpha: alpha,
		Lo:    0,
		Hi:    1,
		T:     t,
		Dual:  dual,
		TGrad: tensor.New(t.Shape...),
	}
}

// WithT returns a shallow copy querying the same network with a different
// perturbation (zero for naive external attackers, t′ for adaptive ones).
func (m *CIPModel) WithT(t *tensor.Tensor) *CIPModel {
	return &CIPModel{
		Alpha: m.Alpha, Lo: m.Lo, Hi: m.Hi,
		T: t, Dual: m.Dual,
		TGrad: tensor.New(t.Shape...),
	}
}

// ZeroT returns a zero perturbation of the model's sample shape.
func (m *CIPModel) ZeroT() *tensor.Tensor { return tensor.New(m.T.Shape...) }

type cipCache struct {
	blend *Blended
	dual  *DualCache
	n     int
}

// Forward implements nn.Layer over original (unblended) inputs.
func (m *CIPModel) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, nn.Cache) {
	b := Blend(x, m.T, m.Alpha, m.Lo, m.Hi)
	logits, dc := m.Dual.Forward(b.C1, b.C2, train)
	return logits, &cipCache{blend: b, dual: dc, n: x.Shape[0]}
}

// Backward implements nn.Layer: it accumulates network parameter
// gradients, optionally accumulates the perturbation gradient, and returns
// the gradient with respect to the original input x.
func (m *CIPModel) Backward(cache nn.Cache, grad *tensor.Tensor) *tensor.Tensor {
	c := cache.(*cipCache)
	g1, g2 := m.Dual.Backward(c.dual, grad)

	// Gate gradients through the clip: clipped elements pass nothing.
	for i, ok := range c.blend.Pass1 {
		if !ok {
			g1.Data[i] = 0
		}
	}
	for i, ok := range c.blend.Pass2 {
		if !ok {
			g2.Data[i] = 0
		}
	}

	// dC1/dx = (1-α), dC2/dx = (1+α).
	gx := tensor.New(g1.Shape...)
	for i := range gx.Data {
		gx.Data[i] = (1-m.Alpha)*g1.Data[i] + (1+m.Alpha)*g2.Data[i]
	}

	if m.AccumTGrad {
		// dC1/dT = α, dC2/dT = −α, summed over the batch.
		ss := m.T.Size()
		for b := 0; b < c.n; b++ {
			off := b * ss
			for j := 0; j < ss; j++ {
				m.TGrad.Data[j] += m.Alpha * (g1.Data[off+j] - g2.Data[off+j])
			}
		}
	}
	return gx
}

// Params implements nn.Layer, exposing the dual-channel network parameters
// (T is optimized separately in Step I and is NOT part of the FL exchange —
// it is the client's secret).
func (m *CIPModel) Params() []*nn.Param { return m.Dual.Params() }

// ZeroTGrad clears the accumulated perturbation gradient.
func (m *CIPModel) ZeroTGrad() { m.TGrad.Zero() }

var _ nn.Layer = (*CIPModel)(nil)
