package core

import (
	"math/rand"
	"testing"

	"github.com/cip-fl/cip/internal/model"
	"github.com/cip-fl/cip/internal/nn"
	"github.com/cip-fl/cip/internal/tensor"
)

func TestSingleChannelModelShapes(t *testing.T) {
	in := model.Input{C: 2, H: 6, W: 6}
	single := NewSingleChannelModel(rand.New(rand.NewSource(1)), model.VGG, in, 5)
	x1 := tensor.New(3, 2, 6, 6)
	x2 := tensor.New(3, 2, 6, 6)
	logits, cache := single.Forward(x1, x2, false)
	if logits.Shape[0] != 3 || logits.Shape[1] != 5 {
		t.Fatalf("single-channel logits shape = %v, want [3 5]", logits.Shape)
	}
	grad := tensor.New(3, 5)
	grad.Fill(0.1)
	g1, g2 := single.Backward(cache, grad)
	if !g1.SameShape(x1) {
		t.Fatalf("g1 shape %v, want %v", g1.Shape, x1.Shape)
	}
	if g2.L2Norm() != 0 {
		t.Fatal("single-channel g2 must be zero (channel 2 unused)")
	}
}

func TestSingleChannelHeadSmaller(t *testing.T) {
	in := model.Input{C: 2, H: 6, W: 6}
	dual := NewDualChannelModel(rand.New(rand.NewSource(1)), model.VGG, in, 5)
	single := NewSingleChannelModel(rand.New(rand.NewSource(1)), model.VGG, in, 5)
	if single.NumParams() >= dual.NumParams() {
		t.Fatalf("single-channel params (%d) should be fewer than dual (%d)",
			single.NumParams(), dual.NumParams())
	}
}

func TestSingleChannelCIPModelGradCheck(t *testing.T) {
	single := NewSingleChannelModel(rand.New(rand.NewSource(2)), model.VGG,
		model.Input{C: 2, H: 6, W: 6}, 3)
	pert := NewPerturbation(7, []int{2, 6, 6}, 0.3, 0.7)
	m := NewCIPModel(single, pert.T, 0.4)
	x := tensor.New(2, 2, 6, 6)
	x.RandUniform(rand.New(rand.NewSource(3)), 0.35, 0.65)
	if rel := nn.GradCheck(m, x, []int{0, 2}, 131); rel > 1e-3 {
		t.Fatalf("single-channel CIP grad check max relative error %v", rel)
	}
}

func TestSingleChannelTrains(t *testing.T) {
	train, _ := testData(t, 9)
	single := NewSingleChannelModel(rand.New(rand.NewSource(4)), model.VGG,
		train.In, train.NumClasses)
	pert := NewPerturbation(5, []int{2, 6, 6}, 0, 1)
	m := NewCIPModel(single, pert.T, 0.5)
	cfg := TrainConfig{Alpha: 0.5, BatchSize: 16, LambdaM: 0.02}
	opt := &nn.SGD{LR: 0.05, Momentum: 0.9}
	rng := rand.New(rand.NewSource(6))
	first := StepIILearnModel(m, train, cfg, opt, rng)
	var last float64
	for i := 0; i < 12; i++ {
		last = StepIILearnModel(m, train, cfg, opt, rng)
	}
	if last >= first {
		t.Fatalf("single-channel Step II failed to learn: %v -> %v", first, last)
	}
}

// TestTheorem1Empirical validates Theorem 1 on a trained CIP model: for
// the overwhelming majority of member samples, the loss under the TRUE
// perturbation is at most the loss under a GUESSED one (training minimized
// the former), which is exactly the theorem's premise, and then the
// advantage ratio ε = exp(−(l(t′) − l(t))/T) is ≤ 1.
func TestTheorem1Empirical(t *testing.T) {
	train, _ := testData(t, 10)
	dual := NewDualChannelModel(rand.New(rand.NewSource(11)), model.VGG,
		train.In, train.NumClasses)
	pert := NewPerturbation(12, []int{2, 6, 6}, 0, 1)
	m := NewCIPModel(dual, pert.T, 0.7)
	cfg := TrainConfig{Alpha: 0.7, LambdaT: 1e-6, LambdaM: 0.3, PerturbLR: 0.02, BatchSize: 16}
	opt := &nn.SGD{LR: 0.05, Momentum: 0.9}
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 25; i++ {
		StepIGeneratePerturbation(m, train, cfg, rng)
		StepIILearnModel(m, train, cfg, opt, rng)
	}

	guess := NewPerturbation(999, []int{2, 6, 6}, 0, 1)
	x, y := train.Batch(0, train.Len())
	lTrue, _ := m.Forward(x, false)
	trueLoss := nn.SoftmaxCrossEntropy(lTrue, y).PerSample
	lg, _ := m.WithT(guess.T).Forward(x, false)
	guessLoss := nn.SoftmaxCrossEntropy(lg, y).PerSample

	satisfied := 0
	epsLeqOne := 0
	for i := range trueLoss {
		if trueLoss[i] <= guessLoss[i] {
			satisfied++
		}
		if AdvantageRatio(trueLoss[i], guessLoss[i], 1) <= 1 {
			epsLeqOne++
		}
	}
	frac := float64(satisfied) / float64(len(trueLoss))
	if frac < 0.7 {
		t.Fatalf("Theorem 1 premise l(t) ≤ l(t′) holds for only %.2f of members, want ≥0.7", frac)
	}
	if satisfied != epsLeqOne {
		t.Fatalf("ε ≤ 1 must coincide exactly with the premise: %d vs %d", epsLeqOne, satisfied)
	}
}
