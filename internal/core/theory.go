package core

import "math"

// AdvantageRatio implements Theorem 1's bound: the factor
// ε = exp(−(l(θ, z_t′) − l(θ, z_t))/T) by which an adaptive attacker's
// adversarial advantage shrinks when it queries with a guessed
// perturbation t′ instead of the true t. Under the theorem's assumption
// l(θ, z_t) ≤ l(θ, z_t′) (training minimized the true-perturbation loss),
// the ratio is at most 1: guessing never helps.
func AdvantageRatio(lossTrue, lossGuessed, temperature float64) float64 {
	if temperature <= 0 {
		temperature = 1
	}
	return math.Exp(-(lossGuessed - lossTrue) / temperature)
}

// AdversarialAdvantage converts a membership probability into the paper's
// adversarial advantage Adv = Pr(m=1|θ,z) / Pr(m=0|θ,z) (Eq. 5).
func AdversarialAdvantage(pMember float64) float64 {
	if pMember >= 1 {
		return math.Inf(1)
	}
	if pMember <= 0 {
		return 0
	}
	return pMember / (1 - pMember)
}
