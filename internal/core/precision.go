package core

import "github.com/cip-fl/cip/internal/tensor"

// Precision policy for CIP training.
//
// The compute tier (tensor GEMM, im2col products, rectifier kernels) can
// run in float32, but the federation's OBSERVABLE state stays float64 no
// matter what the policy says. Concretely, under SetTrainingPrecision(F32):
//
//   - Layer parameters, the Eq. 2 blend x' = α·t + (1-α)·x, the Eq. 3/4
//     losses, and SGD/momentum state remain float64. Only the inner GEMM
//     narrows its operands, accumulates each k-block in f32, and widens
//     the partial sums back — f64 accumulation across blocks keeps the
//     long CIP training runs from drifting at f32 epsilon per block.
//   - Updates crossing internal/fl are []float64; ValidateUpdate, the
//     robust folds, reputation scoring, the wire codec, compression banks,
//     and the checkpoint container are byte-for-byte unchanged. A client
//     training in f32 interoperates with an f64 server and vice versa.
//   - Checkpoints taken under either policy restore under either policy;
//     precision is a per-process compute choice, not persisted state.
//
// Determinism: each precision is individually bit-reproducible — fixed
// kernel dispatch per process and a worker-count-independent reduction
// order (see internal/tensor). f32 and f64 runs are DIFFERENT numerics,
// not approximations of each other; compare metrics across precisions
// with tolerance, never bitwise.
//
// Set the policy once at startup (cmd/ciptrain and cmd/cipbench expose it
// as -precision); flipping it mid-training would change kernel numerics
// between rounds and break reproducibility.

// SetTrainingPrecision selects the compute tier for subsequent training.
func SetTrainingPrecision(p tensor.Precision) { tensor.SetPrecision(p) }

// TrainingPrecision reports the active compute tier.
func TrainingPrecision() tensor.Precision { return tensor.CurrentPrecision() }
