package core

import (
	"time"

	"github.com/cip-fl/cip/internal/telemetry"
)

// Metrics is the trainer's telemetry catalogue. Construct with NewMetrics
// and attach via TrainConfig.Metrics; a nil *Metrics (the default) makes
// every record call a no-op, so the training hot path is unchanged when
// telemetry is off.
type Metrics struct {
	// Step1Loss is the latest Step I (Eq. 3) mean blended batch loss.
	Step1Loss *telemetry.Gauge // train_step1_loss
	// Step2Loss is the latest Step II (Eq. 4) mean blended batch loss.
	Step2Loss *telemetry.Gauge // train_step2_loss
	// OriginalCELoss is the latest mean cross-entropy of the Eq. 4
	// original-query (adversarial) term.
	OriginalCELoss *telemetry.Gauge // train_original_ce_loss
	// EpochSeconds is the wall time of each Step II epoch.
	EpochSeconds *telemetry.Histogram // train_epoch_seconds
	// RoundsTotal counts completed local training rounds.
	RoundsTotal *telemetry.Counter // train_rounds_total
}

// NewMetrics registers the trainer metrics on reg. A nil reg returns nil,
// which disables recording.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		Step1Loss: reg.Gauge("train_step1_loss",
			"Latest Step I (Eq. 3) mean blended batch loss."),
		Step2Loss: reg.Gauge("train_step2_loss",
			"Latest Step II (Eq. 4) mean blended batch loss."),
		OriginalCELoss: reg.Gauge("train_original_ce_loss",
			"Latest mean cross-entropy of the Eq. 4 original-query term."),
		EpochSeconds: reg.Histogram("train_epoch_seconds",
			"Wall time of one Step II local epoch.", telemetry.DurationBuckets()),
		RoundsTotal: reg.Counter("train_rounds_total",
			"Completed local training rounds."),
	}
}

func (m *Metrics) observeStep1(loss float64) {
	if m == nil {
		return
	}
	m.Step1Loss.Set(loss)
}

func (m *Metrics) observeStep2(loss, originalCE float64, haveOriginal bool) {
	if m == nil {
		return
	}
	m.Step2Loss.Set(loss)
	if haveOriginal {
		m.OriginalCELoss.Set(originalCE)
	}
}

func (m *Metrics) observeEpoch(start time.Time) {
	if m == nil {
		return
	}
	m.EpochSeconds.Observe(time.Since(start).Seconds())
}

func (m *Metrics) observeRound() {
	if m == nil {
		return
	}
	m.RoundsTotal.Inc()
}
