package nn

import (
	"math/rand"
	"sync"

	"github.com/cip-fl/cip/internal/tensor"
)

// Dropout zeroes activations with probability Rate during training and
// rescales survivors by 1/(1-Rate) (inverted dropout). At evaluation time it
// is the identity.
type Dropout struct {
	Rate float64

	mu  sync.Mutex
	rng *rand.Rand
}

// NewDropout constructs a dropout layer with its own seeded RNG so that
// training runs are reproducible.
func NewDropout(rng *rand.Rand, rate float64) *Dropout {
	return &Dropout{Rate: rate, rng: rand.New(rand.NewSource(rng.Int63()))}
}

type dropoutCache struct {
	mask []float64 // nil means the pass was a no-op (eval mode or rate 0)
}

// Forward applies the stochastic mask in train mode.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, Cache) {
	if !train || d.Rate <= 0 {
		return x, &dropoutCache{}
	}
	keep := 1 - d.Rate
	mask := make([]float64, len(x.Data))
	out := tensor.New(x.Shape...)
	d.mu.Lock()
	for i := range mask {
		if d.rng.Float64() < keep {
			mask[i] = 1 / keep
		}
	}
	d.mu.Unlock()
	for i, v := range x.Data {
		out.Data[i] = v * mask[i]
	}
	return out, &dropoutCache{mask: mask}
}

// Backward applies the same mask to the gradient.
func (d *Dropout) Backward(cache Cache, grad *tensor.Tensor) *tensor.Tensor {
	c := cache.(*dropoutCache)
	if c.mask == nil {
		return grad
	}
	out := tensor.New(grad.Shape...)
	for i, g := range grad.Data {
		out.Data[i] = g * c.mask[i]
	}
	return out
}

// Params returns nil; Dropout has no parameters.
func (d *Dropout) Params() []*Param { return nil }
