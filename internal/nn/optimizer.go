package nn

import (
	"fmt"
	"math"

	"github.com/cip-fl/cip/internal/tensor"
)

// Optimizer applies accumulated gradients to parameters.
type Optimizer interface {
	// Step updates every parameter from its Grad and clears nothing; call
	// ZeroGrads separately so multi-pass accumulation (dual channel,
	// Eq. 4's two loss terms) stays explicit at the call site.
	Step(params []*Param)
}

// SGD is stochastic gradient descent with optional momentum and weight decay.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	velocity map[*Param]*tensor.Tensor
}

// NewSGD constructs an SGD optimizer.
func NewSGD(lr float64) *SGD { return &SGD{LR: lr} }

// Step applies one SGD update.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		g := p.Grad
		if s.WeightDecay > 0 {
			g = g.Clone()
			tensor.AxpyInPlace(g, s.WeightDecay, p.Value)
		}
		if s.Momentum > 0 {
			if s.velocity == nil {
				s.velocity = make(map[*Param]*tensor.Tensor)
			}
			v, ok := s.velocity[p]
			if !ok {
				v = tensor.New(p.Value.Shape...)
				s.velocity[p] = v
			}
			tensor.ScaleInPlace(v, s.Momentum)
			tensor.AxpyInPlace(v, 1, g)
			g = v
		}
		tensor.AxpyInPlace(p.Value, -s.LR, g)
	}
}

// CaptureVelocity returns the momentum buffers aligned with params: entry
// i is a copy of params[i]'s velocity, or nil when that parameter has not
// been stepped yet. Together with the parameter values themselves this is
// the optimizer's complete state, so a checkpoint that stores it can
// resume momentum SGD bit-identically.
func (s *SGD) CaptureVelocity(params []*Param) [][]float64 {
	out := make([][]float64, len(params))
	for i, p := range params {
		if v, ok := s.velocity[p]; ok {
			out[i] = append([]float64(nil), v.Data...)
		}
	}
	return out
}

// RestoreVelocity installs momentum buffers captured by CaptureVelocity
// onto params (which must be the same parameters, in the same order).
func (s *SGD) RestoreVelocity(params []*Param, vel [][]float64) error {
	if len(vel) != len(params) {
		return fmt.Errorf("nn: RestoreVelocity got %d buffers for %d params", len(vel), len(params))
	}
	for i, data := range vel {
		if data == nil {
			if s.velocity != nil {
				delete(s.velocity, params[i])
			}
			continue
		}
		if len(data) != params[i].Value.Size() {
			return fmt.Errorf("nn: RestoreVelocity buffer %d has %d values, want %d",
				i, len(data), params[i].Value.Size())
		}
		if s.velocity == nil {
			s.velocity = make(map[*Param]*tensor.Tensor)
		}
		v := tensor.New(params[i].Value.Shape...)
		copy(v.Data, data)
		s.velocity[params[i]] = v
	}
	return nil
}

// Adam is the Adam optimizer (Kingma & Ba).
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	t int
	m map[*Param]*tensor.Tensor
	v map[*Param]*tensor.Tensor
}

// NewAdam constructs Adam with the customary defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies one Adam update.
func (a *Adam) Step(params []*Param) {
	if a.m == nil {
		a.m = make(map[*Param]*tensor.Tensor)
		a.v = make(map[*Param]*tensor.Tensor)
	}
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			m = tensor.New(p.Value.Shape...)
			a.m[p] = m
			a.v[p] = tensor.New(p.Value.Shape...)
		}
		v := a.v[p]
		for i, g := range p.Grad.Data {
			m.Data[i] = a.Beta1*m.Data[i] + (1-a.Beta1)*g
			v.Data[i] = a.Beta2*v.Data[i] + (1-a.Beta2)*g*g
			mhat := m.Data[i] / bc1
			vhat := v.Data[i] / bc2
			p.Value.Data[i] -= a.LR * mhat / (math.Sqrt(vhat) + a.Eps)
		}
	}
}

// ClipGradNorm rescales all gradients so their global L2 norm is at most c.
// It returns the pre-clip norm. Both DP-SGD and plain gradient clipping use
// this primitive.
func ClipGradNorm(params []*Param, c float64) float64 {
	var sq float64
	for _, p := range params {
		for _, g := range p.Grad.Data {
			sq += g * g
		}
	}
	norm := math.Sqrt(sq)
	if norm > c && norm > 0 {
		scale := c / norm
		for _, p := range params {
			tensor.ScaleInPlace(p.Grad, scale)
		}
	}
	return norm
}
