package nn

import (
	"math"

	"github.com/cip-fl/cip/internal/tensor"
)

// BatchNorm2D normalizes each channel of NCHW input over the batch and
// spatial dimensions, with learnable scale (gamma) and shift (beta).
type BatchNorm2D struct {
	C        int
	Eps      float64
	Momentum float64 // running-stat decay; 0 means use the 0.9 default
	Gamma    *Param  // [C]
	Beta     *Param  // [C]

	// Running statistics used at inference time. They are exported so the
	// FL substrate can average them across clients along with parameters.
	RunningMean *tensor.Tensor // [C]
	RunningVar  *tensor.Tensor // [C]
}

// NewBatchNorm2D constructs a batch norm over c channels with gamma=1, beta=0.
func NewBatchNorm2D(c int) *BatchNorm2D {
	bn := &BatchNorm2D{
		C:           c,
		Eps:         1e-5,
		Momentum:    0.9,
		Gamma:       NewParam("bn.gamma", c),
		Beta:        NewParam("bn.beta", c),
		RunningMean: tensor.New(c),
		RunningVar:  tensor.New(c),
	}
	bn.Gamma.Value.Fill(1)
	bn.RunningVar.Fill(1)
	return bn
}

type bnCache struct {
	xhat    *tensor.Tensor
	invStd  []float64
	inShape []int
	train   bool
}

// Forward normalizes per channel; in train mode it uses batch statistics and
// updates the running averages, in eval mode it uses the running averages.
func (bn *BatchNorm2D) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, Cache) {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	out := tensor.New(x.Shape...)
	xhat := tensor.New(x.Shape...)
	invStd := make([]float64, c)
	area := n * h * w

	for ch := 0; ch < c; ch++ {
		var mean, variance float64
		if train {
			s := 0.0
			for b := 0; b < n; b++ {
				base := (b*c + ch) * h * w
				for i := 0; i < h*w; i++ {
					s += x.Data[base+i]
				}
			}
			mean = s / float64(area)
			v := 0.0
			for b := 0; b < n; b++ {
				base := (b*c + ch) * h * w
				for i := 0; i < h*w; i++ {
					d := x.Data[base+i] - mean
					v += d * d
				}
			}
			variance = v / float64(area)
			m := bn.Momentum
			if m == 0 {
				m = 0.9
			}
			bn.RunningMean.Data[ch] = m*bn.RunningMean.Data[ch] + (1-m)*mean
			bn.RunningVar.Data[ch] = m*bn.RunningVar.Data[ch] + (1-m)*variance
		} else {
			mean = bn.RunningMean.Data[ch]
			variance = bn.RunningVar.Data[ch]
		}
		is := 1.0 / math.Sqrt(variance+bn.Eps)
		invStd[ch] = is
		g, bta := bn.Gamma.Value.Data[ch], bn.Beta.Value.Data[ch]
		for b := 0; b < n; b++ {
			base := (b*c + ch) * h * w
			for i := 0; i < h*w; i++ {
				xh := (x.Data[base+i] - mean) * is
				xhat.Data[base+i] = xh
				out.Data[base+i] = g*xh + bta
			}
		}
	}
	return out, &bnCache{xhat: xhat, invStd: invStd, inShape: append([]int(nil), x.Shape...), train: train}
}

// Backward implements the standard batch-norm gradient. In eval mode the
// normalization constants are fixed, so the gradient is a plain affine map.
func (bn *BatchNorm2D) Backward(cache Cache, grad *tensor.Tensor) *tensor.Tensor {
	cc := cache.(*bnCache)
	n, c, h, w := cc.inShape[0], cc.inShape[1], cc.inShape[2], cc.inShape[3]
	out := tensor.New(cc.inShape...)
	area := float64(n * h * w)

	for ch := 0; ch < c; ch++ {
		var sumG, sumGX float64
		for b := 0; b < n; b++ {
			base := (b*c + ch) * h * w
			for i := 0; i < h*w; i++ {
				g := grad.Data[base+i]
				sumG += g
				sumGX += g * cc.xhat.Data[base+i]
			}
		}
		bn.Beta.Grad.Data[ch] += sumG
		bn.Gamma.Grad.Data[ch] += sumGX

		gamma := bn.Gamma.Value.Data[ch]
		is := cc.invStd[ch]
		if cc.train {
			// dX = gamma*invStd/area * (area*dY − Σ dY − x̂ * Σ(dY·x̂))
			for b := 0; b < n; b++ {
				base := (b*c + ch) * h * w
				for i := 0; i < h*w; i++ {
					g := grad.Data[base+i]
					xh := cc.xhat.Data[base+i]
					out.Data[base+i] = gamma * is / area * (area*g - sumG - xh*sumGX)
				}
			}
		} else {
			for b := 0; b < n; b++ {
				base := (b*c + ch) * h * w
				for i := 0; i < h*w; i++ {
					out.Data[base+i] = gamma * is * grad.Data[base+i]
				}
			}
		}
	}
	return out
}

// Params returns gamma and beta.
func (bn *BatchNorm2D) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }
