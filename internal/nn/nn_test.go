package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/cip-fl/cip/internal/tensor"
)

func randLabels(rng *rand.Rand, n, k int) []int {
	labels := make([]int, n)
	for i := range labels {
		labels[i] = rng.Intn(k)
	}
	return labels
}

func TestDenseForwardShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(rng, 5, 3)
	x := tensor.New(4, 5)
	x.RandNormal(rng, 0, 1)
	out, _ := d.Forward(x, true)
	if out.Shape[0] != 4 || out.Shape[1] != 3 {
		t.Fatalf("Dense output shape = %v, want [4 3]", out.Shape)
	}
}

func TestDenseGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := NewSequential(NewDense(rng, 6, 8), ReLU{}, NewDense(rng, 8, 4))
	x := tensor.New(3, 6)
	x.RandNormal(rng, 0, 1)
	if rel := GradCheck(net, x, randLabels(rng, 3, 4), 3); rel > 1e-4 {
		t.Fatalf("Dense grad check max relative error %v", rel)
	}
}

func TestConvGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := tensor.ConvGeom{InC: 2, InH: 5, InW: 5, KH: 3, KW: 3, Stride: 1, Pad: 1}
	net := NewSequential(
		NewConv2D(rng, g, 3),
		ReLU{},
		GlobalAvgPool{},
		NewDense(rng, 3, 4),
	)
	x := tensor.New(2, 2, 5, 5)
	x.RandNormal(rng, 0, 1)
	if rel := GradCheck(net, x, randLabels(rng, 2, 4), 7); rel > 1e-4 {
		t.Fatalf("Conv grad check max relative error %v", rel)
	}
}

func TestMaxPoolGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := tensor.ConvGeom{InC: 1, InH: 6, InW: 6, KH: 3, KW: 3, Stride: 1, Pad: 1}
	net := NewSequential(
		NewConv2D(rng, g, 2),
		MaxPool2D{Size: 2},
		Flatten{},
		NewDense(rng, 2*3*3, 3),
	)
	x := tensor.New(2, 1, 6, 6)
	x.RandNormal(rng, 0, 1)
	if rel := GradCheck(net, x, randLabels(rng, 2, 3), 5); rel > 1e-4 {
		t.Fatalf("MaxPool grad check max relative error %v", rel)
	}
}

func TestBatchNormGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := tensor.ConvGeom{InC: 2, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1, Pad: 1}
	net := NewSequential(
		NewConv2D(rng, g, 3),
		NewBatchNorm2D(3),
		ReLU{},
		GlobalAvgPool{},
		NewDense(rng, 3, 3),
	)
	x := tensor.New(3, 2, 4, 4)
	x.RandNormal(rng, 0, 1)
	if rel := GradCheck(net, x, randLabels(rng, 3, 3), 9); rel > 1e-3 {
		t.Fatalf("BatchNorm grad check max relative error %v", rel)
	}
}

func TestResidualGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := tensor.ConvGeom{InC: 3, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1, Pad: 1}
	block := &Residual{Body: NewSequential(NewConv2D(rng, g, 3), ReLU{})}
	net := NewSequential(block, GlobalAvgPool{}, NewDense(rng, 3, 3))
	x := tensor.New(2, 3, 4, 4)
	x.RandNormal(rng, 0, 1)
	if rel := GradCheck(net, x, randLabels(rng, 2, 3), 9); rel > 1e-4 {
		t.Fatalf("Residual grad check max relative error %v", rel)
	}
}

func TestDenseBlockGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := tensor.ConvGeom{InC: 2, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1, Pad: 1}
	block := &DenseBlock{Body: NewSequential(NewConv2D(rng, g, 2), ReLU{})}
	net := NewSequential(block, GlobalAvgPool{}, NewDense(rng, 4, 3))
	x := tensor.New(2, 2, 4, 4)
	x.RandNormal(rng, 0, 1)
	if rel := GradCheck(net, x, randLabels(rng, 2, 3), 7); rel > 1e-4 {
		t.Fatalf("DenseBlock grad check max relative error %v", rel)
	}
}

func TestTanhLeakyReLUGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := NewSequential(
		NewDense(rng, 4, 6),
		Tanh{},
		NewDense(rng, 6, 6),
		LeakyReLU{Slope: 0.1},
		NewDense(rng, 6, 3),
	)
	x := tensor.New(3, 4)
	x.RandNormal(rng, 0, 1)
	if rel := GradCheck(net, x, randLabels(rng, 3, 3), 3); rel > 1e-4 {
		t.Fatalf("activation grad check max relative error %v", rel)
	}
}

func TestSoftmaxIsSimplexProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, k := 1+r.Intn(8), 2+r.Intn(8)
		logits := tensor.New(n, k)
		logits.RandNormal(r, 0, 5)
		p := Softmax(logits)
		for i := 0; i < n; i++ {
			s := 0.0
			for j := 0; j < k; j++ {
				v := p.At(i, j)
				if v < 0 || v > 1 {
					return false
				}
				s += v
			}
			if math.Abs(s-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	logits := tensor.New(2, 4)
	logits.RandNormal(rng, 0, 1)
	shifted := tensor.Apply(logits, func(v float64) float64 { return v + 1000 })
	if !tensor.Equal(Softmax(logits), Softmax(shifted), 1e-9) {
		t.Fatal("softmax is not shift invariant")
	}
}

func TestCrossEntropyNonNegativeAndGradSumsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	logits := tensor.New(5, 7)
	logits.RandNormal(rng, 0, 2)
	labels := randLabels(rng, 5, 7)
	res := SoftmaxCrossEntropy(logits, labels)
	if res.Loss < 0 {
		t.Fatalf("CE loss = %v < 0", res.Loss)
	}
	for i, l := range res.PerSample {
		if l < 0 {
			t.Fatalf("per-sample loss[%d] = %v < 0", i, l)
		}
	}
	// Each gradient row of softmax-CE sums to zero.
	for i := 0; i < 5; i++ {
		s := 0.0
		for j := 0; j < 7; j++ {
			s += res.Grad.At(i, j)
		}
		if math.Abs(s) > 1e-12 {
			t.Fatalf("grad row %d sums to %v, want 0", i, s)
		}
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float64{
		2, 1, 0,
		0, 5, 1,
		1, 0, 3,
	}, 3, 3)
	if got := Accuracy(logits, []int{0, 1, 2}); got != 1 {
		t.Fatalf("Accuracy = %v, want 1", got)
	}
	if got := Accuracy(logits, []int{1, 1, 1}); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("Accuracy = %v, want 1/3", got)
	}
}

func TestSGDReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	net := NewSequential(NewDense(rng, 4, 16), ReLU{}, NewDense(rng, 16, 3))
	x := tensor.New(12, 4)
	x.RandNormal(rng, 0, 1)
	labels := randLabels(rng, 12, 3)
	opt := &SGD{LR: 0.1, Momentum: 0.9}

	losses := make([]float64, 0, 50)
	for i := 0; i < 50; i++ {
		ZeroGrads(net.Params())
		logits, cache := net.Forward(x, true)
		res := SoftmaxCrossEntropy(logits, labels)
		net.Backward(cache, res.Grad)
		opt.Step(net.Params())
		losses = append(losses, res.Loss)
	}
	if losses[len(losses)-1] > 0.5*losses[0] {
		t.Fatalf("SGD failed to fit: loss %v -> %v", losses[0], losses[len(losses)-1])
	}
}

func TestAdamReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	net := NewSequential(NewDense(rng, 4, 16), ReLU{}, NewDense(rng, 16, 3))
	x := tensor.New(12, 4)
	x.RandNormal(rng, 0, 1)
	labels := randLabels(rng, 12, 3)
	opt := NewAdam(0.01)

	var first, last float64
	for i := 0; i < 60; i++ {
		ZeroGrads(net.Params())
		logits, cache := net.Forward(x, true)
		res := SoftmaxCrossEntropy(logits, labels)
		net.Backward(cache, res.Grad)
		opt.Step(net.Params())
		if i == 0 {
			first = res.Loss
		}
		last = res.Loss
	}
	if last > 0.5*first {
		t.Fatalf("Adam failed to fit: loss %v -> %v", first, last)
	}
}

func TestSGDWeightDecayShrinksWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	d := NewDense(rng, 3, 3)
	before := d.W.Value.L2Norm()
	opt := &SGD{LR: 0.1, WeightDecay: 0.5}
	ZeroGrads(d.Params())
	opt.Step(d.Params()) // zero grad, only decay acts
	if after := d.W.Value.L2Norm(); after >= before {
		t.Fatalf("weight decay did not shrink weights: %v -> %v", before, after)
	}
}

func TestFlatParamsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	net := NewSequential(NewDense(rng, 5, 7), ReLU{}, NewDense(rng, 7, 2))
	flat := FlattenParams(net.Params())
	want := NumParams(net.Params())
	if len(flat) != want {
		t.Fatalf("flat length = %d, want %d", len(flat), want)
	}

	net2 := NewSequential(NewDense(rng, 5, 7), ReLU{}, NewDense(rng, 7, 2))
	if err := SetFlatParams(net2.Params(), flat); err != nil {
		t.Fatal(err)
	}
	flat2 := FlattenParams(net2.Params())
	for i := range flat {
		if flat[i] != flat2[i] {
			t.Fatalf("round trip diverged at %d: %v vs %v", i, flat[i], flat2[i])
		}
	}

	if err := SetFlatParams(net2.Params(), flat[:len(flat)-1]); err == nil {
		t.Fatal("SetFlatParams accepted a short vector")
	}
}

func TestClipGradNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	d := NewDense(rng, 4, 4)
	d.W.Grad.RandNormal(rng, 0, 10)
	d.B.Grad.RandNormal(rng, 0, 10)
	pre := ClipGradNorm(d.Params(), 1.0)
	if pre <= 1 {
		t.Fatalf("test setup: expected large pre-clip norm, got %v", pre)
	}
	var sq float64
	for _, p := range d.Params() {
		for _, g := range p.Grad.Data {
			sq += g * g
		}
	}
	if post := math.Sqrt(sq); math.Abs(post-1.0) > 1e-9 {
		t.Fatalf("post-clip norm = %v, want 1", post)
	}
}

func TestDropoutEvalIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	d := NewDropout(rng, 0.5)
	x := tensor.New(4, 6)
	x.RandNormal(rng, 0, 1)
	out, _ := d.Forward(x, false)
	if !tensor.Equal(out, x, 0) {
		t.Fatal("dropout modified input in eval mode")
	}
}

func TestDropoutTrainPreservesScaleOnAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	d := NewDropout(rng, 0.3)
	x := tensor.New(1, 10000)
	x.Fill(1)
	out, _ := d.Forward(x, true)
	if mean := out.Mean(); math.Abs(mean-1) > 0.05 {
		t.Fatalf("inverted dropout mean = %v, want ≈1", mean)
	}
}

// TestSharedBackboneGradAccumulation verifies the property the dual-channel
// model depends on: forwarding two inputs through one network and
// backpropagating both accumulates the sum of both gradient contributions.
func TestSharedBackboneGradAccumulation(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	net := NewSequential(NewDense(rng, 3, 5), ReLU{}, NewDense(rng, 5, 2))
	xa := tensor.New(2, 3)
	xb := tensor.New(2, 3)
	xa.RandNormal(rng, 0, 1)
	xb.RandNormal(rng, 0, 1)
	labels := []int{0, 1}

	grads := func(x *tensor.Tensor) []float64 {
		ZeroGrads(net.Params())
		logits, cache := net.Forward(x, true)
		res := SoftmaxCrossEntropy(logits, labels)
		net.Backward(cache, res.Grad)
		return FlattenGrads(net.Params())
	}
	ga := grads(xa)
	gb := grads(xb)

	ZeroGrads(net.Params())
	la, ca := net.Forward(xa, true)
	lb, cb := net.Forward(xb, true)
	ra := SoftmaxCrossEntropy(la, labels)
	rb := SoftmaxCrossEntropy(lb, labels)
	net.Backward(ca, ra.Grad)
	net.Backward(cb, rb.Grad)
	gBoth := FlattenGrads(net.Params())

	for i := range gBoth {
		if math.Abs(gBoth[i]-(ga[i]+gb[i])) > 1e-10 {
			t.Fatalf("shared-backbone grad[%d] = %v, want %v", i, gBoth[i], ga[i]+gb[i])
		}
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	bn := NewBatchNorm2D(2)
	x := tensor.New(4, 2, 3, 3)
	x.RandNormal(rng, 3, 2)
	for i := 0; i < 20; i++ {
		bn.Forward(x, true)
	}
	out, _ := bn.Forward(x, false)
	// After training on a fixed batch the eval output should be roughly
	// normalized (running stats converge to batch stats).
	if m := out.Mean(); math.Abs(m) > 0.3 {
		t.Fatalf("eval-mode BN mean = %v, want ≈0", m)
	}
}

func TestConcatChannels(t *testing.T) {
	a := tensor.New(1, 2, 2, 2)
	b := tensor.New(1, 1, 2, 2)
	for i := range a.Data {
		a.Data[i] = float64(i)
	}
	for i := range b.Data {
		b.Data[i] = 100 + float64(i)
	}
	out := ConcatChannels(a, b)
	if out.Shape[1] != 3 {
		t.Fatalf("concat channels = %d, want 3", out.Shape[1])
	}
	if out.At(0, 0, 0, 0) != 0 || out.At(0, 2, 0, 0) != 100 {
		t.Fatalf("concat misplaced data: %v", out.Data)
	}
}

func TestNumParams(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	d := NewDense(rng, 10, 5)
	if got := NumParams(d.Params()); got != 10*5+5 {
		t.Fatalf("NumParams = %d, want 55", got)
	}
}
