package nn

import "fmt"

// FlattenParams concatenates every parameter value into one flat vector.
// This is the representation exchanged at the federated-learning boundary
// (aggregation, transport, DP clipping, white-box attacks).
func FlattenParams(params []*Param) []float64 {
	n := NumParams(params)
	out := make([]float64, 0, n)
	for _, p := range params {
		out = append(out, p.Value.Data...)
	}
	return out
}

// SetFlatParams writes a flat vector produced by FlattenParams back into the
// parameters. It returns an error when the vector length does not match.
func SetFlatParams(params []*Param, flat []float64) error {
	if got, want := len(flat), NumParams(params); got != want {
		return fmt.Errorf("nn: flat vector length %d does not match parameter count %d", got, want)
	}
	off := 0
	for _, p := range params {
		n := p.Value.Size()
		copy(p.Value.Data, flat[off:off+n])
		off += n
	}
	return nil
}

// FlattenGrads concatenates every parameter gradient into one flat vector.
// White-box (parameter-based) membership inference attacks consume this.
func FlattenGrads(params []*Param) []float64 {
	n := NumParams(params)
	out := make([]float64, 0, n)
	for _, p := range params {
		out = append(out, p.Grad.Data...)
	}
	return out
}

// AxpyParams computes dst += alpha*src over flat parameter vectors in place.
func AxpyParams(dst []float64, alpha float64, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("nn: AxpyParams length mismatch %d vs %d", len(dst), len(src)))
	}
	for i := range dst {
		dst[i] += alpha * src[i]
	}
}
