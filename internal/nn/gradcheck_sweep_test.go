package nn

import (
	"math"
	"math/rand"
	"testing"

	"github.com/cip-fl/cip/internal/tensor"
)

// The stochastic dropout mask is re-drawn on every Forward, so the naive
// GradCheck (which re-runs Forward for finite differences) would compare
// gradients of different functions. Instead we pin the mask from one
// forward pass and finite-difference the fixed-mask function by hand.
func TestDropoutBackwardMatchesFixedMaskFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	d := NewDropout(rng, 0.4)
	x := tensor.New(3, 10)
	// Strictly nonzero inputs so the mask is recoverable as out/x.
	for i := range x.Data {
		x.Data[i] = 1 + rng.Float64()
	}
	out, cache := d.Forward(x, true)

	// Recover the mask the layer drew.
	mask := make([]float64, x.Size())
	zeros, kept := 0, 0
	for i := range mask {
		mask[i] = out.Data[i] / x.Data[i]
		if mask[i] == 0 {
			zeros++
		} else {
			kept++
		}
	}
	if zeros == 0 || kept == 0 {
		t.Fatalf("degenerate mask (%d zeroed, %d kept); pick a different seed", zeros, kept)
	}

	// Loss L = Σ out_i². dL/dout = 2·out; the layer must pull it back
	// through the same mask it applied forward.
	grad := tensor.New(x.Shape...)
	for i := range grad.Data {
		grad.Data[i] = 2 * out.Data[i]
	}
	analytic := d.Backward(cache, grad)

	const h = 1e-6
	for i := range x.Data {
		// f(x) with the pinned mask: Σ (x_j·mask_j)².
		lossAt := func(xi float64) float64 {
			s := 0.0
			for j := range x.Data {
				v := x.Data[j]
				if j == i {
					v = xi
				}
				v *= mask[j]
				s += v * v
			}
			return s
		}
		numeric := (lossAt(x.Data[i]+h) - lossAt(x.Data[i]-h)) / (2 * h)
		if math.Abs(analytic.Data[i]-numeric) > 1e-4*(1+math.Abs(numeric)) {
			t.Fatalf("dropout input grad[%d] = %g, finite difference = %g",
				i, analytic.Data[i], numeric)
		}
	}
}

func TestDropoutEvalBackwardPassesGradThrough(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	d := NewDropout(rng, 0.9)
	x := tensor.New(2, 8)
	x.RandNormal(rng, 0, 1)
	_, cache := d.Forward(x, false)
	grad := tensor.New(2, 8)
	grad.RandNormal(rng, 0, 1)
	if back := d.Backward(cache, grad); !tensor.Equal(back, grad, 0) {
		t.Fatal("eval-mode dropout backward must pass the gradient through unchanged")
	}
}

func TestDropoutMaskScalesSurvivorsByInverseKeep(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	rate := 0.3
	d := NewDropout(rng, rate)
	x := tensor.New(4, 25)
	x.Fill(1)
	out, _ := d.Forward(x, true)
	want := 1 / (1 - rate)
	for i, v := range out.Data {
		if v != 0 && math.Abs(v-want) > 1e-12 {
			t.Fatalf("survivor %d scaled to %g, want %g", i, v, want)
		}
	}
}

// bnEvalWrapper forces the eval branch of BatchNorm2D regardless of the
// train flag, so GradCheck exercises the fixed-statistics affine path
// (Backward's cc.train == false arm) that inference uses.
type bnEvalWrapper struct {
	bn *BatchNorm2D
}

func (w bnEvalWrapper) Forward(x *tensor.Tensor, _ bool) (*tensor.Tensor, Cache) {
	return w.bn.Forward(x, false)
}
func (w bnEvalWrapper) Backward(cache Cache, grad *tensor.Tensor) *tensor.Tensor {
	return w.bn.Backward(cache, grad)
}
func (w bnEvalWrapper) Params() []*Param { return w.bn.Params() }

func TestBatchNormEvalBranchGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := tensor.ConvGeom{InC: 2, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1, Pad: 1}
	bn := NewBatchNorm2D(3)
	// Populate running statistics with one train-mode pass over warm-up
	// data so the eval branch normalizes with realistic constants.
	warm := tensor.New(4, 3, 4, 4)
	warm.RandNormal(rng, 0.5, 2)
	bn.Forward(warm, true)

	net := NewSequential(
		NewConv2D(rng, g, 3),
		bnEvalWrapper{bn},
		ReLU{},
		GlobalAvgPool{},
		NewDense(rng, 3, 3),
	)
	x := tensor.New(3, 2, 4, 4)
	x.RandNormal(rng, 0, 1)
	if rel := GradCheck(net, x, randLabels(rng, 3, 3), 9); rel > 1e-3 {
		t.Fatalf("BatchNorm eval-branch grad check max relative error %v", rel)
	}
}

func TestGlobalAvgPoolGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	net := NewSequential(
		GlobalAvgPool{},
		NewDense(rng, 3, 4),
	)
	x := tensor.New(2, 3, 4, 4)
	x.RandNormal(rng, 0, 1)
	if rel := GradCheck(net, x, randLabels(rng, 2, 4), 1); rel > 1e-4 {
		t.Fatalf("GlobalAvgPool grad check max relative error %v", rel)
	}
}
