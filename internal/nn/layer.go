// Package nn implements a from-scratch neural-network stack: layers with
// explicit forward caches, softmax cross-entropy loss, SGD/Adam optimizers,
// and flat parameter-vector views used by the federated-learning substrate.
//
// Layers are stateless with respect to a forward pass: Forward returns the
// activation cache that Backward later consumes. Because no pass state is
// stored on the layer itself, a single layer (or network) instance can be
// run forward multiple times before backpropagating — which is exactly what
// CIP's dual-channel architecture requires when both blend components share
// one backbone (paper Fig. 3).
package nn

import (
	"fmt"

	"github.com/cip-fl/cip/internal/tensor"
)

// Cache carries layer-specific activation state from Forward to Backward.
type Cache any

// Layer is a differentiable network building block.
type Layer interface {
	// Forward computes the layer output for x. When train is true the layer
	// may behave stochastically (dropout) or update running statistics
	// (batch norm). The returned cache must be passed to Backward.
	Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, Cache)
	// Backward consumes a cache from Forward and the gradient of the loss
	// with respect to the layer output, accumulates parameter gradients
	// (adding into Param.Grad), and returns the gradient with respect to
	// the layer input.
	Backward(cache Cache, grad *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's trainable parameters (possibly empty).
	Params() []*Param
}

// Param is a trainable tensor together with its accumulated gradient.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// NewParam allocates a parameter and matching zero gradient.
func NewParam(name string, shape ...int) *Param {
	return &Param{Name: name, Value: tensor.New(shape...), Grad: tensor.New(shape...)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Sequential chains layers; it is itself a Layer, so networks compose.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a Sequential from the given layers.
func NewSequential(layers ...Layer) *Sequential {
	return &Sequential{Layers: layers}
}

type sequentialCache struct {
	caches []Cache
}

// Forward runs x through every layer in order.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, Cache) {
	caches := make([]Cache, len(s.Layers))
	out := x
	for i, l := range s.Layers {
		out, caches[i] = l.Forward(out, train)
	}
	return out, &sequentialCache{caches: caches}
}

// Backward backpropagates through the layers in reverse order.
func (s *Sequential) Backward(cache Cache, grad *tensor.Tensor) *tensor.Tensor {
	c, ok := cache.(*sequentialCache)
	if !ok {
		panic(fmt.Sprintf("nn: Sequential.Backward got cache of type %T", cache))
	}
	g := grad
	for i := len(s.Layers) - 1; i >= 0; i-- {
		g = s.Layers[i].Backward(c.caches[i], g)
	}
	return g
}

// ParamBackprop is implemented by layers that can accumulate parameter
// gradients without materializing the gradient with respect to their
// input. A network's first layer produces an input gradient nobody reads —
// for a convolution that gradient costs a full GEMM plus a col2im scatter —
// so training steps go through TrainBackward to skip it.
type ParamBackprop interface {
	// BackwardParams is Backward minus the input-gradient computation.
	BackwardParams(cache Cache, grad *tensor.Tensor)
}

// BackwardParams implements ParamBackprop: layers after the first
// backpropagate normally, and the first layer skips its input gradient
// when it knows how to.
func (s *Sequential) BackwardParams(cache Cache, grad *tensor.Tensor) {
	c, ok := cache.(*sequentialCache)
	if !ok {
		panic(fmt.Sprintf("nn: Sequential.BackwardParams got cache of type %T", cache))
	}
	g := grad
	for i := len(s.Layers) - 1; i >= 1; i-- {
		g = s.Layers[i].Backward(c.caches[i], g)
	}
	if len(s.Layers) == 0 {
		return
	}
	if pb, ok := s.Layers[0].(ParamBackprop); ok {
		pb.BackwardParams(c.caches[0], g)
		return
	}
	s.Layers[0].Backward(c.caches[0], g)
}

// TrainBackward backpropagates a training step's loss gradient. Training
// never consumes the network's own input gradient, so the first layer may
// skip computing it; use net.Backward directly when the input gradient is
// needed (gradient checking, input-space perturbation).
func TrainBackward(net Layer, cache Cache, grad *tensor.Tensor) {
	if pb, ok := net.(ParamBackprop); ok {
		pb.BackwardParams(cache, grad)
		return
	}
	net.Backward(cache, grad)
}

// Params returns the concatenated parameters of all layers.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrads clears the gradients of every parameter in ps.
func ZeroGrads(ps []*Param) {
	for _, p := range ps {
		p.ZeroGrad()
	}
}

// NumParams returns the total number of scalar parameters in ps. The paper's
// Table XI compares this count between legacy and CIP dual-channel models.
func NumParams(ps []*Param) int {
	n := 0
	for _, p := range ps {
		n += p.Value.Size()
	}
	return n
}
