package nn

import (
	"math"

	"github.com/cip-fl/cip/internal/tensor"
)

// GradCheck compares the analytic gradient of mean-CE(net(x), labels) with
// central finite differences over a subset of parameters and the input.
// It returns the maximum relative error observed. Tests assert this is tiny;
// it is exported so model-zoo tests in other packages can reuse it.
func GradCheck(net Layer, x *tensor.Tensor, labels []int, probeEvery int) float64 {
	const h = 1e-5
	params := net.Params()
	ZeroGrads(params)

	logits, cache := net.Forward(x, true)
	res := SoftmaxCrossEntropy(logits, labels)
	inputGrad := net.Backward(cache, res.Grad)

	lossAt := func() float64 {
		lg, _ := net.Forward(x, true)
		return SoftmaxCrossEntropy(lg, labels).Loss
	}

	maxRel := 0.0
	check := func(analytic float64, bump func(delta float64)) {
		bump(h)
		lPlus := lossAt()
		bump(-2 * h)
		lMinus := lossAt()
		bump(h)
		numeric := (lPlus - lMinus) / (2 * h)
		denom := math.Max(1e-6, math.Abs(analytic)+math.Abs(numeric))
		rel := math.Abs(analytic-numeric) / denom
		if rel > maxRel {
			maxRel = rel
		}
	}

	if probeEvery < 1 {
		probeEvery = 1
	}
	for _, p := range params {
		for i := 0; i < p.Value.Size(); i += probeEvery {
			i := i
			check(p.Grad.Data[i], func(d float64) { p.Value.Data[i] += d })
		}
	}
	for i := 0; i < x.Size(); i += probeEvery {
		i := i
		check(inputGrad.Data[i], func(d float64) { x.Data[i] += d })
	}
	return maxRel
}
