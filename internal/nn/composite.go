package nn

import (
	"fmt"

	"github.com/cip-fl/cip/internal/tensor"
)

// Residual computes out = x + Body(x), the identity-skip connection that
// characterizes the ResNet family. Body must preserve the input shape.
type Residual struct {
	Body Layer
}

type residualCache struct {
	bodyCache Cache
}

// Forward adds the body output to the input.
func (r *Residual) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, Cache) {
	y, c := r.Body.Forward(x, train)
	if !y.SameShape(x) {
		panic(fmt.Sprintf("nn: Residual body changed shape %v -> %v", x.Shape, y.Shape))
	}
	return tensor.Add(x, y), &residualCache{bodyCache: c}
}

// Backward sends the gradient through both the skip and the body path.
func (r *Residual) Backward(cache Cache, grad *tensor.Tensor) *tensor.Tensor {
	c := cache.(*residualCache)
	bodyGrad := r.Body.Backward(c.bodyCache, grad)
	return tensor.Add(grad, bodyGrad)
}

// Params returns the body parameters.
func (r *Residual) Params() []*Param { return r.Body.Params() }

// ConcatChannels concatenates NCHW tensors along the channel dimension.
func ConcatChannels(a, b *tensor.Tensor) *tensor.Tensor {
	n, ca, h, w := a.Shape[0], a.Shape[1], a.Shape[2], a.Shape[3]
	cb := b.Shape[1]
	if b.Shape[0] != n || b.Shape[2] != h || b.Shape[3] != w {
		panic(fmt.Sprintf("nn: ConcatChannels shape mismatch %v vs %v", a.Shape, b.Shape))
	}
	out := tensor.New(n, ca+cb, h, w)
	plane := h * w
	for bi := 0; bi < n; bi++ {
		copy(out.Data[bi*(ca+cb)*plane:], a.Data[bi*ca*plane:(bi+1)*ca*plane])
		copy(out.Data[(bi*(ca+cb)+ca)*plane:], b.Data[bi*cb*plane:(bi+1)*cb*plane])
	}
	return out
}

// splitChannels is the inverse of ConcatChannels for the backward pass.
func splitChannels(x *tensor.Tensor, ca int) (*tensor.Tensor, *tensor.Tensor) {
	n, ctot, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	cb := ctot - ca
	a := tensor.New(n, ca, h, w)
	b := tensor.New(n, cb, h, w)
	plane := h * w
	for bi := 0; bi < n; bi++ {
		copy(a.Data[bi*ca*plane:], x.Data[bi*ctot*plane:bi*ctot*plane+ca*plane])
		copy(b.Data[bi*cb*plane:], x.Data[bi*ctot*plane+ca*plane:(bi+1)*ctot*plane])
	}
	return a, b
}

// DenseBlock computes out = concat(x, Body(x)) along channels, the
// concatenative connectivity that characterizes the DenseNet family.
type DenseBlock struct {
	Body Layer
}

type denseBlockCache struct {
	bodyCache Cache
	inC       int
}

// Forward concatenates the input with the body output channel-wise.
func (d *DenseBlock) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, Cache) {
	y, c := d.Body.Forward(x, train)
	return ConcatChannels(x, y), &denseBlockCache{bodyCache: c, inC: x.Shape[1]}
}

// Backward splits the gradient between the pass-through and body channels.
func (d *DenseBlock) Backward(cache Cache, grad *tensor.Tensor) *tensor.Tensor {
	c := cache.(*denseBlockCache)
	gx, gy := splitChannels(grad, c.inC)
	bodyGrad := d.Body.Backward(c.bodyCache, gy)
	return tensor.Add(gx, bodyGrad)
}

// Params returns the body parameters.
func (d *DenseBlock) Params() []*Param { return d.Body.Params() }
