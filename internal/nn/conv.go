package nn

import (
	"fmt"
	"math/rand"

	"github.com/cip-fl/cip/internal/tensor"
)

// Conv2D is a 2-D convolution over NCHW inputs with OIHW kernels,
// implemented via im2col lowering to a single matmul.
type Conv2D struct {
	Geom tensor.ConvGeom
	OutC int
	W    *Param // [OutC, InC*KH*KW]
	B    *Param // [OutC]
}

// NewConv2D constructs a convolution with He initialization. It panics on a
// degenerate geometry; layer construction errors are programmer errors.
func NewConv2D(rng *rand.Rand, g tensor.ConvGeom, outC int) *Conv2D {
	if err := g.Validate(); err != nil {
		panic(fmt.Sprintf("nn: %v", err))
	}
	fanIn := g.InC * g.KH * g.KW
	c := &Conv2D{
		Geom: g,
		OutC: outC,
		W:    NewParam("conv.w", outC, fanIn),
		B:    NewParam("conv.b", outC),
	}
	c.W.Value.HeInit(rng, fanIn)
	return c
}

// The conv cache is the pooled im2col matrix itself ([N*OH*OW, InC*KH*KW]);
// boxing the existing pointer into the Cache interface costs no allocation,
// and the batch size is recoverable from its row count.

// Forward computes the convolution for x of shape [N, InC, InH, InW]. The
// im2col matrix and the GEMM product are pooled scratch; the bias add is
// fused into the GEMM epilogue. The columns stay in the cache (Backward
// both needs and releases them); caches that never reach Backward simply
// fall to the garbage collector.
func (c *Conv2D) Forward(x *tensor.Tensor, _ bool) (*tensor.Tensor, Cache) {
	g := c.Geom
	n := x.Shape[0]
	k := g.InC * g.KH * g.KW
	oh, ow := g.OutH(), g.OutW()
	spatial := oh * ow

	cols := tensor.GetTensor(n*spatial, k) // [N*OH*OW, K]
	tensor.Im2ColInto(cols, x, g)
	prod := tensor.GetTensor(n*spatial, c.OutC) // [N*OH*OW, OutC]
	tensor.MatMulTransBBiasInto(prod, cols, c.W.Value, c.B.Value.Data)

	out := tensor.New(n, c.OutC, oh, ow)
	for b := 0; b < n; b++ {
		for s := 0; s < spatial; s++ {
			row := prod.Data[(b*spatial+s)*c.OutC : (b*spatial+s+1)*c.OutC]
			for oc, v := range row {
				out.Data[(b*c.OutC+oc)*spatial+s] = v
			}
		}
	}
	tensor.PutTensor(prod)
	return out, cols
}

// Backward accumulates kernel/bias gradients and returns the input gradient.
// It consumes the cached im2col buffer: the columns are dead once dW is
// computed, so the same storage is reused as the grad-columns destination
// and then returned to the pool.
func (c *Conv2D) Backward(cache Cache, grad *tensor.Tensor) *tensor.Tensor {
	gm, cols, n := c.accumParamGrads(cache, grad)
	gradCols := cols // cols are dead after dW; reuse as [N*OH*OW, K] dst
	tensor.MatMulInto(gradCols, gm, c.W.Value)
	tensor.PutTensor(gm)
	out := tensor.Col2Im(gradCols, n, c.Geom)
	tensor.PutTensor(gradCols)
	return out
}

// BackwardParams implements ParamBackprop: kernel/bias gradients without
// the input-gradient GEMM and col2im scatter a first layer never needs.
func (c *Conv2D) BackwardParams(cache Cache, grad *tensor.Tensor) {
	gm, cols, _ := c.accumParamGrads(cache, grad)
	tensor.PutTensor(gm)
	tensor.PutTensor(cols)
}

// accumParamGrads adds this batch's kernel and bias gradients into the
// params and returns the reordered output gradient and the cached columns
// (both owned by the caller, to finish or release).
func (c *Conv2D) accumParamGrads(cache Cache, grad *tensor.Tensor) (gm, cols *tensor.Tensor, n int) {
	cols = cache.(*tensor.Tensor)
	g := c.Geom
	spatial := g.OutH() * g.OutW()
	n = cols.Shape[0] / spatial

	// Reorder grad [N, OutC, OH, OW] into row-major [N*OH*OW, OutC].
	gm = tensor.GetTensor(n*spatial, c.OutC)
	for b := 0; b < n; b++ {
		for oc := 0; oc < c.OutC; oc++ {
			base := (b*c.OutC + oc) * spatial
			for s := 0; s < spatial; s++ {
				gm.Data[(b*spatial+s)*c.OutC+oc] = grad.Data[base+s]
			}
		}
	}

	dW := tensor.GetTensor(c.OutC, g.InC*g.KH*g.KW)
	tensor.MatMulTransAInto(dW, gm, cols) // [OutC, K]
	tensor.AddInPlace(c.W.Grad, dW)
	tensor.PutTensor(dW)
	for r := 0; r < n*spatial; r++ {
		row := gm.Data[r*c.OutC : (r+1)*c.OutC]
		for oc, v := range row {
			c.B.Grad.Data[oc] += v
		}
	}
	return gm, cols, n
}

// Params returns the kernel and bias.
func (c *Conv2D) Params() []*Param { return []*Param{c.W, c.B} }
