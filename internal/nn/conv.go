package nn

import (
	"fmt"
	"math/rand"

	"github.com/cip-fl/cip/internal/tensor"
)

// Conv2D is a 2-D convolution over NCHW inputs with OIHW kernels,
// implemented via im2col lowering to a single matmul.
type Conv2D struct {
	Geom tensor.ConvGeom
	OutC int
	W    *Param // [OutC, InC*KH*KW]
	B    *Param // [OutC]
}

// NewConv2D constructs a convolution with He initialization. It panics on a
// degenerate geometry; layer construction errors are programmer errors.
func NewConv2D(rng *rand.Rand, g tensor.ConvGeom, outC int) *Conv2D {
	if err := g.Validate(); err != nil {
		panic(fmt.Sprintf("nn: %v", err))
	}
	fanIn := g.InC * g.KH * g.KW
	c := &Conv2D{
		Geom: g,
		OutC: outC,
		W:    NewParam("conv.w", outC, fanIn),
		B:    NewParam("conv.b", outC),
	}
	c.W.Value.HeInit(rng, fanIn)
	return c
}

type convCache struct {
	cols *tensor.Tensor // [N*OH*OW, InC*KH*KW]
	n    int
}

// Forward computes the convolution for x of shape [N, InC, InH, InW].
func (c *Conv2D) Forward(x *tensor.Tensor, _ bool) (*tensor.Tensor, Cache) {
	g := c.Geom
	n := x.Shape[0]
	cols := tensor.Im2Col(x, g)                  // [N*OH*OW, K]
	prod := tensor.MatMulTransB(cols, c.W.Value) // [N*OH*OW, OutC]
	oh, ow := g.OutH(), g.OutW()
	out := tensor.New(n, c.OutC, oh, ow)
	spatial := oh * ow
	for b := 0; b < n; b++ {
		for s := 0; s < spatial; s++ {
			row := prod.Data[(b*spatial+s)*c.OutC : (b*spatial+s+1)*c.OutC]
			for oc, v := range row {
				out.Data[(b*c.OutC+oc)*spatial+s] = v + c.B.Value.Data[oc]
			}
		}
	}
	return out, &convCache{cols: cols, n: n}
}

// Backward accumulates kernel/bias gradients and returns the input gradient.
func (c *Conv2D) Backward(cache Cache, grad *tensor.Tensor) *tensor.Tensor {
	cc := cache.(*convCache)
	g := c.Geom
	oh, ow := g.OutH(), g.OutW()
	spatial := oh * ow
	n := cc.n

	// Reorder grad [N, OutC, OH, OW] into row-major [N*OH*OW, OutC].
	gm := tensor.New(n*spatial, c.OutC)
	for b := 0; b < n; b++ {
		for oc := 0; oc < c.OutC; oc++ {
			base := (b*c.OutC + oc) * spatial
			for s := 0; s < spatial; s++ {
				gm.Data[(b*spatial+s)*c.OutC+oc] = grad.Data[base+s]
			}
		}
	}

	dW := tensor.MatMulTransA(gm, cc.cols) // [OutC, K]
	tensor.AddInPlace(c.W.Grad, dW)
	for r := 0; r < n*spatial; r++ {
		row := gm.Data[r*c.OutC : (r+1)*c.OutC]
		for oc, v := range row {
			c.B.Grad.Data[oc] += v
		}
	}

	gradCols := tensor.MatMul(gm, c.W.Value) // [N*OH*OW, K]
	return tensor.Col2Im(gradCols, n, g)
}

// Params returns the kernel and bias.
func (c *Conv2D) Params() []*Param { return []*Param{c.W, c.B} }
