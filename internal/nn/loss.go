package nn

import (
	"fmt"
	"math"

	"github.com/cip-fl/cip/internal/tensor"
)

// Softmax returns row-wise softmax probabilities for logits of shape [N, K].
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	n, k := logits.Shape[0], logits.Shape[1]
	out := tensor.New(n, k)
	for i := 0; i < n; i++ {
		row := logits.Data[i*k : (i+1)*k]
		m := row[0]
		for _, v := range row[1:] {
			if v > m {
				m = v
			}
		}
		s := 0.0
		orow := out.Data[i*k : (i+1)*k]
		for j, v := range row {
			e := math.Exp(v - m)
			orow[j] = e
			s += e
		}
		for j := range orow {
			orow[j] /= s
		}
	}
	return out
}

// CEResult bundles everything downstream consumers need from one softmax
// cross-entropy evaluation: the mean loss, per-sample losses (membership
// inference attacks threshold on these), the probabilities, and the
// gradient with respect to the logits.
type CEResult struct {
	Loss      float64
	PerSample []float64
	Probs     *tensor.Tensor
	Grad      *tensor.Tensor // d(mean loss)/d(logits), shape [N, K]
}

// SoftmaxCrossEntropy computes softmax + cross-entropy for integer labels.
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) CEResult {
	n, k := logits.Shape[0], logits.Shape[1]
	if len(labels) != n {
		panic(fmt.Sprintf("nn: %d labels for %d logits rows", len(labels), n))
	}
	probs := Softmax(logits)
	grad := tensor.New(n, k)
	per := make([]float64, n)
	total := 0.0
	inv := 1.0 / float64(n)
	for i := 0; i < n; i++ {
		y := labels[i]
		if y < 0 || y >= k {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", y, k))
		}
		p := probs.Data[i*k+y]
		l := -math.Log(math.Max(p, 1e-15))
		per[i] = l
		total += l
		grow := grad.Data[i*k : (i+1)*k]
		prow := probs.Data[i*k : (i+1)*k]
		for j := range grow {
			grow[j] = prow[j] * inv
		}
		grow[y] -= inv
	}
	return CEResult{Loss: total * inv, PerSample: per, Probs: probs, Grad: grad}
}

// PerSampleLosses evaluates a network on x/labels and returns the per-sample
// cross-entropy losses without any gradient computation. This is the basic
// probe used by loss-threshold membership inference attacks.
func PerSampleLosses(net Layer, x *tensor.Tensor, labels []int) []float64 {
	logits, _ := net.Forward(x, false)
	return SoftmaxCrossEntropy(logits, labels).PerSample
}

// Accuracy returns the fraction of rows whose argmax matches the label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	n, k := logits.Shape[0], logits.Shape[1]
	if n == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < n; i++ {
		row := logits.Data[i*k : (i+1)*k]
		best, arg := row[0], 0
		for j, v := range row {
			if v > best {
				best, arg = v, j
			}
		}
		if arg == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(n)
}
