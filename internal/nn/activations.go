package nn

import (
	"math"

	"github.com/cip-fl/cip/internal/tensor"
)

// ReLU is the rectified linear activation.
type ReLU struct{}

type reluCache struct {
	y *tensor.Tensor
}

// Forward zeroes negative activations. The output doubles as the backward
// gate (y > 0 exactly when the input was positive), so no mask is stored.
func (ReLU) Forward(x *tensor.Tensor, _ bool) (*tensor.Tensor, Cache) {
	out := tensor.ReluInto(tensor.New(x.Shape...), x)
	return out, &reluCache{y: out}
}

// Backward gates the gradient by the forward output's sign.
func (ReLU) Backward(cache Cache, grad *tensor.Tensor) *tensor.Tensor {
	c := cache.(*reluCache)
	return tensor.ReluGateInto(tensor.New(grad.Shape...), c.y, grad)
}

// Params returns nil; ReLU has no parameters.
func (ReLU) Params() []*Param { return nil }

// LeakyReLU is ReLU with a small negative slope.
type LeakyReLU struct {
	Slope float64
}

type leakyCache struct {
	neg []bool
}

// Forward scales negative activations by Slope.
func (l LeakyReLU) Forward(x *tensor.Tensor, _ bool) (*tensor.Tensor, Cache) {
	out := tensor.New(x.Shape...)
	neg := make([]bool, len(x.Data))
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
		} else {
			out.Data[i] = l.Slope * v
			neg[i] = true
		}
	}
	return out, &leakyCache{neg: neg}
}

// Backward scales gradients on the negative side by Slope.
func (l LeakyReLU) Backward(cache Cache, grad *tensor.Tensor) *tensor.Tensor {
	c := cache.(*leakyCache)
	out := tensor.New(grad.Shape...)
	for i, n := range c.neg {
		if n {
			out.Data[i] = l.Slope * grad.Data[i]
		} else {
			out.Data[i] = grad.Data[i]
		}
	}
	return out
}

// Params returns nil; LeakyReLU has no parameters.
func (LeakyReLU) Params() []*Param { return nil }

// Tanh is the hyperbolic-tangent activation.
type Tanh struct{}

type tanhCache struct {
	y *tensor.Tensor
}

// Forward applies tanh elementwise.
func (Tanh) Forward(x *tensor.Tensor, _ bool) (*tensor.Tensor, Cache) {
	out := tensor.New(x.Shape...)
	for i, v := range x.Data {
		out.Data[i] = math.Tanh(v)
	}
	return out, &tanhCache{y: out}
}

// Backward multiplies the gradient by 1 − tanh².
func (Tanh) Backward(cache Cache, grad *tensor.Tensor) *tensor.Tensor {
	c := cache.(*tanhCache)
	out := tensor.New(grad.Shape...)
	for i, g := range grad.Data {
		y := c.y.Data[i]
		out.Data[i] = g * (1 - y*y)
	}
	return out
}

// Params returns nil; Tanh has no parameters.
func (Tanh) Params() []*Param { return nil }
