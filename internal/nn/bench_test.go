package nn

import (
	"math/rand"
	"testing"

	"github.com/cip-fl/cip/internal/tensor"
)

func benchNet() (*Sequential, *tensor.Tensor, []int) {
	rng := rand.New(rand.NewSource(1))
	g := tensor.ConvGeom{InC: 3, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}
	g2 := tensor.ConvGeom{InC: 8, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}
	net := NewSequential(
		NewConv2D(rng, g, 8),
		ReLU{},
		NewConv2D(rng, g2, 8),
		ReLU{},
		MaxPool2D{Size: 2},
		Flatten{},
		NewDense(rng, 8*4*4, 10),
	)
	x := tensor.New(32, 3, 8, 8)
	x.RandNormal(rng, 0, 1)
	labels := make([]int, 32)
	for i := range labels {
		labels[i] = rng.Intn(10)
	}
	return net, x, labels
}

func BenchmarkForward(b *testing.B) {
	net, x, _ := benchNet()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		net.Forward(x, false)
	}
}

func BenchmarkForwardBackwardStep(b *testing.B) {
	net, x, labels := benchNet()
	opt := &SGD{LR: 0.01, Momentum: 0.9}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ZeroGrads(net.Params())
		logits, cache := net.Forward(x, true)
		res := SoftmaxCrossEntropy(logits, labels)
		net.Backward(cache, res.Grad)
		opt.Step(net.Params())
	}
}

// BenchmarkConvForwardBackward isolates one Conv2D layer's train-mode
// forward + backward, the path the scratch arena exists for: im2col
// columns, GEMM product, reordered grad, and dW all come from the pool, so
// steady-state allocations are just the two escaping output tensors.
func BenchmarkConvForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := tensor.ConvGeom{InC: 8, InH: 16, InW: 16, KH: 3, KW: 3, Stride: 1, Pad: 1}
	c := NewConv2D(rng, g, 16)
	x := tensor.New(16, 8, 16, 16)
	x.RandNormal(rng, 0, 1)
	grad := tensor.New(16, 16, 16, 16)
	grad.RandNormal(rng, 0, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ZeroGrads(c.Params())
		_, cache := c.Forward(x, true)
		c.Backward(cache, grad)
	}
}

func BenchmarkSoftmaxCrossEntropy(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	logits := tensor.New(128, 100)
	logits.RandNormal(rng, 0, 2)
	labels := make([]int, 128)
	for i := range labels {
		labels[i] = rng.Intn(100)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SoftmaxCrossEntropy(logits, labels)
	}
}

func BenchmarkFlattenParams(b *testing.B) {
	net, _, _ := benchNet()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FlattenParams(net.Params())
	}
}
