package nn

import (
	"math/rand"

	"github.com/cip-fl/cip/internal/tensor"
)

// Dense is a fully connected layer: out = x·Wᵀ + b for x of shape [N, in].
type Dense struct {
	In, Out int
	W       *Param // [Out, In]
	B       *Param // [Out]
}

// NewDense constructs a Dense layer with He initialization.
func NewDense(rng *rand.Rand, in, out int) *Dense {
	d := &Dense{
		In:  in,
		Out: out,
		W:   NewParam("dense.w", out, in),
		B:   NewParam("dense.b", out),
	}
	d.W.Value.HeInit(rng, in)
	return d
}

type denseCache struct {
	x *tensor.Tensor
}

// Forward computes x·Wᵀ + b, with the bias fused into the GEMM epilogue.
func (d *Dense) Forward(x *tensor.Tensor, _ bool) (*tensor.Tensor, Cache) {
	out := tensor.New(x.Shape[0], d.Out)
	tensor.MatMulTransBBiasInto(out, x, d.W.Value, d.B.Value.Data)
	return out, &denseCache{x: x}
}

// Backward accumulates dW = gradᵀ·x and db = Σ grad, returning grad·W.
// dW is staged through a pooled scratch tensor so the accumulation
// allocates nothing.
func (d *Dense) Backward(cache Cache, grad *tensor.Tensor) *tensor.Tensor {
	d.BackwardParams(cache, grad)
	return tensor.MatMul(grad, d.W.Value) // [N, In]
}

// BackwardParams implements ParamBackprop: weight/bias gradients without
// the grad·W product a first layer never needs.
func (d *Dense) BackwardParams(cache Cache, grad *tensor.Tensor) {
	c := cache.(*denseCache)
	dW := tensor.GetTensor(d.Out, d.In)
	tensor.MatMulTransAInto(dW, grad, c.x) // [Out, In]
	tensor.AddInPlace(d.W.Grad, dW)
	tensor.PutTensor(dW)
	n := grad.Shape[0]
	for i := 0; i < n; i++ {
		row := grad.Data[i*d.Out : (i+1)*d.Out]
		for j := range row {
			d.B.Grad.Data[j] += row[j]
		}
	}
}

// Params returns the weight and bias.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }
