package nn

import (
	"math/rand"

	"github.com/cip-fl/cip/internal/tensor"
)

// Dense is a fully connected layer: out = x·Wᵀ + b for x of shape [N, in].
type Dense struct {
	In, Out int
	W       *Param // [Out, In]
	B       *Param // [Out]
}

// NewDense constructs a Dense layer with He initialization.
func NewDense(rng *rand.Rand, in, out int) *Dense {
	d := &Dense{
		In:  in,
		Out: out,
		W:   NewParam("dense.w", out, in),
		B:   NewParam("dense.b", out),
	}
	d.W.Value.HeInit(rng, in)
	return d
}

type denseCache struct {
	x *tensor.Tensor
}

// Forward computes x·Wᵀ + b.
func (d *Dense) Forward(x *tensor.Tensor, _ bool) (*tensor.Tensor, Cache) {
	out := tensor.MatMulTransB(x, d.W.Value) // [N, Out]
	n := x.Shape[0]
	for i := 0; i < n; i++ {
		row := out.Data[i*d.Out : (i+1)*d.Out]
		for j := range row {
			row[j] += d.B.Value.Data[j]
		}
	}
	return out, &denseCache{x: x}
}

// Backward accumulates dW = gradᵀ·x and db = Σ grad, returning grad·W.
func (d *Dense) Backward(cache Cache, grad *tensor.Tensor) *tensor.Tensor {
	c := cache.(*denseCache)
	dW := tensor.MatMulTransA(grad, c.x) // [Out, In]
	tensor.AddInPlace(d.W.Grad, dW)
	n := grad.Shape[0]
	for i := 0; i < n; i++ {
		row := grad.Data[i*d.Out : (i+1)*d.Out]
		for j := range row {
			d.B.Grad.Data[j] += row[j]
		}
	}
	return tensor.MatMul(grad, d.W.Value) // [N, In]
}

// Params returns the weight and bias.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }
