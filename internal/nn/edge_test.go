package nn

import (
	"math"
	"math/rand"
	"testing"

	"github.com/cip-fl/cip/internal/tensor"
)

func TestSoftmaxExtremLogitsStable(t *testing.T) {
	logits := tensor.FromSlice([]float64{1e6, -1e6, 0}, 1, 3)
	p := Softmax(logits)
	for _, v := range p.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("softmax produced non-finite value: %v", p.Data)
		}
	}
	if math.Abs(p.Data[0]-1) > 1e-9 {
		t.Fatalf("dominant logit probability = %v, want ≈1", p.Data[0])
	}
}

func TestCrossEntropyInvalidLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range label")
		}
	}()
	SoftmaxCrossEntropy(tensor.New(1, 3), []int{7})
}

func TestCrossEntropyLabelCountMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for label/row mismatch")
		}
	}()
	SoftmaxCrossEntropy(tensor.New(2, 3), []int{0})
}

func TestSequentialEmptyIsIdentity(t *testing.T) {
	s := NewSequential()
	x := tensor.FromSlice([]float64{1, 2, 3}, 1, 3)
	out, cache := s.Forward(x, true)
	if !tensor.Equal(out, x, 0) {
		t.Fatal("empty Sequential should pass input through")
	}
	grad := tensor.FromSlice([]float64{4, 5, 6}, 1, 3)
	back := s.Backward(cache, grad)
	if !tensor.Equal(back, grad, 0) {
		t.Fatal("empty Sequential should pass gradient through")
	}
}

func TestSequentialBackwardWrongCachePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := NewSequential(NewDense(rng, 2, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for foreign cache type")
		}
	}()
	s.Backward("not a cache", tensor.New(1, 2))
}

func TestClipGradNormNoopBelowBound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := NewDense(rng, 3, 3)
	d.W.Grad.Fill(0.001)
	before := append([]float64(nil), d.W.Grad.Data...)
	ClipGradNorm(d.Params(), 10)
	for i, v := range d.W.Grad.Data {
		if v != before[i] {
			t.Fatal("clip modified gradients already below the bound")
		}
	}
}

func TestAccuracyEmpty(t *testing.T) {
	if got := Accuracy(tensor.New(0, 3), nil); got != 0 {
		t.Fatalf("empty accuracy = %v, want 0", got)
	}
}

func TestAdamStateIsolatedPerParam(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := NewDense(rng, 2, 2)
	b := NewDense(rng, 2, 2)
	opt := NewAdam(0.1)
	a.W.Grad.Fill(1)
	opt.Step(a.Params())
	// Stepping a second, never-seen parameter set must not disturb a's state.
	b.W.Grad.Fill(-1)
	opt.Step(b.Params())
	if a.W.Value.Data[0] == b.W.Value.Data[0] {
		t.Skip("values coincide by chance; nothing to assert")
	}
}

func TestMomentumAcceleratesDescent(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	plain := NewDense(rng, 1, 1)
	moment := NewDense(rng, 1, 1)
	moment.W.Value.Data[0] = plain.W.Value.Data[0]

	optP := &SGD{LR: 0.01}
	optM := &SGD{LR: 0.01, Momentum: 0.9}
	for i := 0; i < 10; i++ {
		plain.W.Grad.Data[0] = 1
		moment.W.Grad.Data[0] = 1
		optP.Step(plain.Params())
		optM.Step(moment.Params())
	}
	// With a constant gradient, momentum must have traveled further.
	if moment.W.Value.Data[0] >= plain.W.Value.Data[0] {
		t.Fatalf("momentum (%v) should descend past plain SGD (%v)",
			moment.W.Value.Data[0], plain.W.Value.Data[0])
	}
}
