package nn

import (
	"fmt"

	"github.com/cip-fl/cip/internal/tensor"
)

// MaxPool2D is a non-overlapping max pooling over NCHW inputs.
type MaxPool2D struct {
	Size int // pooling window edge and stride
}

type maxPoolCache struct {
	argmax  []int // flat input index of each output element's max
	inShape []int
}

// Forward pools each Size×Size window to its maximum.
func (m MaxPool2D) Forward(x *tensor.Tensor, _ bool) (*tensor.Tensor, Cache) {
	if m.Size <= 0 {
		panic(fmt.Sprintf("nn: MaxPool2D size must be positive, got %d", m.Size))
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow := h/m.Size, w/m.Size
	out := tensor.New(n, c, oh, ow)
	argmax := make([]int, out.Size())
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			inBase := (b*c + ch) * h * w
			outBase := (b*c + ch) * oh * ow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := -1
					bestV := 0.0
					for ky := 0; ky < m.Size; ky++ {
						for kx := 0; kx < m.Size; kx++ {
							idx := inBase + (oy*m.Size+ky)*w + ox*m.Size + kx
							if best < 0 || x.Data[idx] > bestV {
								best, bestV = idx, x.Data[idx]
							}
						}
					}
					out.Data[outBase+oy*ow+ox] = bestV
					argmax[outBase+oy*ow+ox] = best
				}
			}
		}
	}
	return out, &maxPoolCache{argmax: argmax, inShape: append([]int(nil), x.Shape...)}
}

// Backward routes each output gradient to the input position that won the max.
func (m MaxPool2D) Backward(cache Cache, grad *tensor.Tensor) *tensor.Tensor {
	c := cache.(*maxPoolCache)
	out := tensor.New(c.inShape...)
	for i, src := range c.argmax {
		out.Data[src] += grad.Data[i]
	}
	return out
}

// Params returns nil; pooling has no parameters.
func (MaxPool2D) Params() []*Param { return nil }

// GlobalAvgPool reduces NCHW input to [N, C] by averaging each channel's
// spatial plane — the GAP layer of the paper's dual-channel head (Fig. 3).
type GlobalAvgPool struct{}

type gapCache struct {
	inShape []int
}

// Forward averages over the spatial dimensions.
func (GlobalAvgPool) Forward(x *tensor.Tensor, _ bool) (*tensor.Tensor, Cache) {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	out := tensor.New(n, c)
	area := float64(h * w)
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			base := (b*c + ch) * h * w
			s := 0.0
			for i := 0; i < h*w; i++ {
				s += x.Data[base+i]
			}
			out.Data[b*c+ch] = s / area
		}
	}
	return out, &gapCache{inShape: append([]int(nil), x.Shape...)}
}

// Backward distributes each channel gradient uniformly over its plane.
func (GlobalAvgPool) Backward(cache Cache, grad *tensor.Tensor) *tensor.Tensor {
	cc := cache.(*gapCache)
	n, c, h, w := cc.inShape[0], cc.inShape[1], cc.inShape[2], cc.inShape[3]
	out := tensor.New(cc.inShape...)
	inv := 1.0 / float64(h*w)
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			g := grad.Data[b*c+ch] * inv
			base := (b*c + ch) * h * w
			for i := 0; i < h*w; i++ {
				out.Data[base+i] = g
			}
		}
	}
	return out
}

// Params returns nil; pooling has no parameters.
func (GlobalAvgPool) Params() []*Param { return nil }

// Flatten reshapes [N, ...] input to [N, D].
type Flatten struct{}

type flattenCache struct {
	inShape []int
}

// Forward flattens all trailing dimensions.
func (Flatten) Forward(x *tensor.Tensor, _ bool) (*tensor.Tensor, Cache) {
	n := x.Shape[0]
	d := x.Size() / n
	return x.Reshape(n, d), &flattenCache{inShape: append([]int(nil), x.Shape...)}
}

// Backward restores the original shape.
func (Flatten) Backward(cache Cache, grad *tensor.Tensor) *tensor.Tensor {
	c := cache.(*flattenCache)
	return grad.Reshape(c.inShape...)
}

// Params returns nil; Flatten has no parameters.
func (Flatten) Params() []*Param { return nil }
