package nn

import (
	"testing"

	"github.com/cip-fl/cip/internal/tensor"
)

func velocityFixture(vals ...float64) []*Param {
	params := make([]*Param, len(vals))
	for i, v := range vals {
		p := &Param{Value: tensor.New(2)}
		p.Value.Data[0], p.Value.Data[1] = v, -v
		p.Grad = tensor.New(2)
		p.Grad.Data[0], p.Grad.Data[1] = 0.5, 0.25
		params[i] = p
	}
	return params
}

// TestVelocityRoundTripResumesBitIdentical checks the optimizer half of
// the checkpoint contract: momentum SGD resumed from captured velocity on
// a fresh optimizer continues bit-identically to one that never stopped.
func TestVelocityRoundTripResumesBitIdentical(t *testing.T) {
	ref := velocityFixture(1, 2)
	refOpt := &SGD{LR: 0.1, Momentum: 0.9}
	refOpt.Step(ref)
	refOpt.Step(ref)

	// Interrupted twin: one step, capture, "process death", restore onto a
	// fresh optimizer over identically valued params, second step.
	live := velocityFixture(1, 2)
	liveOpt := &SGD{LR: 0.1, Momentum: 0.9}
	liveOpt.Step(live)
	vel := liveOpt.CaptureVelocity(live)

	resumed := velocityFixture(0, 0)
	for i, p := range resumed {
		copy(p.Value.Data, live[i].Value.Data)
	}
	resumedOpt := &SGD{LR: 0.1, Momentum: 0.9}
	if err := resumedOpt.RestoreVelocity(resumed, vel); err != nil {
		t.Fatal(err)
	}
	resumedOpt.Step(resumed)

	for i := range ref {
		for j, want := range ref[i].Value.Data {
			if got := resumed[i].Value.Data[j]; got != want {
				t.Fatalf("param %d[%d]: resumed %v, uninterrupted %v", i, j, got, want)
			}
		}
	}
}

func TestCaptureVelocityBeforeAnyStepIsNil(t *testing.T) {
	params := velocityFixture(1)
	opt := &SGD{LR: 0.1, Momentum: 0.9}
	vel := opt.CaptureVelocity(params)
	if len(vel) != 1 || vel[0] != nil {
		t.Fatalf("unstepped optimizer captured %v, want a nil buffer", vel)
	}
	// Restoring a nil buffer must clear any stale velocity.
	opt.Step(params)
	if err := opt.RestoreVelocity(params, vel); err != nil {
		t.Fatal(err)
	}
	if got := opt.CaptureVelocity(params); got[0] != nil {
		t.Fatal("RestoreVelocity(nil buffer) left stale velocity behind")
	}
}

func TestRestoreVelocityRejectsMismatch(t *testing.T) {
	params := velocityFixture(1, 2)
	opt := &SGD{LR: 0.1, Momentum: 0.9}
	if err := opt.RestoreVelocity(params, [][]float64{{1, 2}}); err == nil {
		t.Fatal("buffer count mismatch accepted")
	}
	if err := opt.RestoreVelocity(params, [][]float64{{1, 2, 3}, nil}); err == nil {
		t.Fatal("buffer size mismatch accepted")
	}
}
