package flcli

import (
	"flag"

	"github.com/cip-fl/cip/internal/core"
	"github.com/cip-fl/cip/internal/tensor"
)

// RegisterPrecisionFlag installs -precision on the default flag set.
// cmd/ciptrain and cmd/cipbench share it so both train and bench runs can
// select the float32 compute tier with the same spelling.
func RegisterPrecisionFlag() *string {
	return flag.String("precision", "f64",
		"training compute precision: f64 (default) or f32 (float32 GEMM with float64 "+
			"interchange at the FL boundary; each precision is bit-reproducible but the "+
			"two are different numerics)")
}

// ApplyPrecisionFlag parses the -precision value and installs it as the
// process-wide training precision. Call once, right after flag.Parse.
func ApplyPrecisionFlag(value string) (tensor.Precision, error) {
	p, err := tensor.ParsePrecision(value)
	if err != nil {
		return tensor.F64, err
	}
	core.SetTrainingPrecision(p)
	return p, nil
}
