package flcli

import (
	"flag"
	"fmt"
	"strings"
)

// TreeFlags bundles the aggregation-tree topology flags flserver exposes
// and the subset (quorum/coverage policy) that in-process harnesses like
// flload share. Register on the default flag set before flag.Parse, then
// Validate with the node's role after.
type TreeFlags struct {
	Parent        *string
	AltParents    *string
	SubtreeQuorum *int
	CoverageFloor *float64
}

// RegisterTreeFlags installs the full topology flag set: -parent,
// -alt-parents, -subtree-quorum, and -coverage-floor.
func RegisterTreeFlags() *TreeFlags {
	t := registerTreePolicyFlags()
	t.Parent = flag.String("parent", "",
		"upstream aggregator address for tree nodes (-role leaf or interior); "+
			"generalizes the legacy -root flag, which remains an alias")
	t.AltParents = flag.String("alt-parents", "",
		"comma-separated fallback parent addresses; a tree node that exhausts its "+
			"retry budget against one parent fails over to the next and rejoins "+
			"mid-federation with its session token")
	return t
}

// RegisterTreePolicyFlags installs only -subtree-quorum and
// -coverage-floor, for binaries that build the tree in-process and have
// no parent address to dial (flload). Parent and AltParents parse as
// empty.
func RegisterTreePolicyFlags() *TreeFlags {
	t := registerTreePolicyFlags()
	empty, alt := "", ""
	t.Parent, t.AltParents = &empty, &alt
	return t
}

func registerTreePolicyFlags() *TreeFlags {
	return &TreeFlags{
		SubtreeQuorum: flag.Int("subtree-quorum", 0,
			"minimum valid children per round at a tree node; a node that falls below it "+
				"forwards a degraded partial (annotated with the shortfall) instead of "+
				"stalling the round; 0 keeps the node fail-stop"),
		CoverageFloor: flag.Float64("coverage-floor", 0,
			"minimum fraction of planned cohort weight that must reach an aggregating "+
				"node for the round to count; below it the round aborts cleanly; 0 "+
				"accepts any coverage"),
	}
}

// Validate checks ranges and that the parent flags only appear on roles
// that dial upward (leaf or interior).
func (t *TreeFlags) Validate(role string) error {
	if *t.SubtreeQuorum < 0 {
		return fmt.Errorf("-subtree-quorum %d is negative", *t.SubtreeQuorum)
	}
	if *t.CoverageFloor < 0 || *t.CoverageFloor > 1 {
		return fmt.Errorf("-coverage-floor %v out of range [0, 1]", *t.CoverageFloor)
	}
	child := role == "leaf" || role == "interior"
	if *t.Parent != "" && !child {
		return fmt.Errorf("-parent only applies to -role leaf or interior (got %q)", role)
	}
	if *t.AltParents != "" && !child {
		return fmt.Errorf("-alt-parents only applies to -role leaf or interior (got %q)", role)
	}
	return nil
}

// ParentAddr resolves the upstream address: -parent when set, otherwise
// the legacy fallback (flserver's -root).
func (t *TreeFlags) ParentAddr(fallback string) string {
	if *t.Parent != "" {
		return *t.Parent
	}
	return fallback
}

// AltList splits -alt-parents into addresses, dropping empty entries.
func (t *TreeFlags) AltList() []string {
	var out []string
	for _, a := range strings.Split(*t.AltParents, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}
