package flcli

import (
	"flag"
	"fmt"

	"github.com/cip-fl/cip/internal/fl/robust"
)

// RobustFlags bundles the Byzantine-resilience flags cmd/flserver and
// cmd/ciptrain share: the robust aggregation rule and the reputation
// tracker's quarantine threshold. Register on the default flag set before
// flag.Parse, then Build after.
type RobustFlags struct {
	Agg             *string
	TrimFrac        *float64
	QuarantineAfter *int
}

// RegisterRobustFlags installs -robust-agg, -trim-frac, and
// -quarantine-after on the default flag set.
func RegisterRobustFlags() *RobustFlags {
	return &RobustFlags{
		Agg: flag.String("robust-agg", "",
			"robust aggregation rule: mean, median, trimmed, clipped; empty keeps sample-weighted FedAvg"),
		TrimFrac: flag.Float64("trim-frac", 0.1,
			"per-tail trim fraction for -robust-agg trimmed, in (0, 0.5)"),
		QuarantineAfter: flag.Int("quarantine-after", 0,
			"quarantine a client after this many reputation strikes; 0 disables the reputation tracker"),
	}
}

// Build turns the parsed flags into an aggregator and reputation tracker.
// maxNorm feeds the clipped rule's bound (flserver reuses -max-update-norm
// for it; callers without that flag pass 0, making clipped unavailable).
// Both returns are nil when the corresponding flag is off.
func (rf *RobustFlags) Build(maxNorm float64) (robust.Aggregator, *robust.Reputation, error) {
	agg, err := robust.New(*rf.Agg, *rf.TrimFrac, maxNorm)
	if err != nil {
		if *rf.Agg == "clipped" && maxNorm <= 0 {
			return nil, nil, fmt.Errorf("-robust-agg clipped needs -max-update-norm > 0: %w", err)
		}
		return nil, nil, err
	}
	var rep *robust.Reputation
	if *rf.QuarantineAfter > 0 {
		rep = robust.NewReputation(robust.ReputationConfig{QuarantineAfter: *rf.QuarantineAfter})
	}
	return agg, rep, nil
}
