package flcli

import (
	"flag"
	"fmt"
)

// SampleFlags bundles the per-round cohort-sampling flags flserver and
// ciptrain share. Register on the default flag set before flag.Parse,
// then Validate after.
type SampleFlags struct {
	Frac *float64
	Seed *int64
}

// RegisterSampleFlags installs -sample-frac and -sample-seed on the
// default flag set.
func RegisterSampleFlags() *SampleFlags {
	return &SampleFlags{
		Frac: flag.Float64("sample-frac", 0,
			"per-round client sampling fraction in (0, 1): each round trains a cohort of "+
				"~frac×roster, weighted by client sample counts and never below the quorum; "+
				"0 or 1 trains everyone"),
		Seed: flag.Int64("sample-seed", 1,
			"cohort sampler seed; the per-round cohort is a pure function of (seed, round), "+
				"so a resumed federation replays the same schedule"),
	}
}

// Validate rejects fractions outside [0, 1].
func (s *SampleFlags) Validate() error {
	if *s.Frac < 0 || *s.Frac > 1 {
		return fmt.Errorf("-sample-frac %v out of range [0, 1]", *s.Frac)
	}
	return nil
}
