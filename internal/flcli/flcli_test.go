package flcli

import (
	"path/filepath"
	"testing"

	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/model"
)

func TestParseDataset(t *testing.T) {
	tests := []struct {
		name, scale string
		wantPreset  datasets.Preset
		wantScale   datasets.Scale
		wantErr     bool
	}{
		{"cifar100", "quick", datasets.CIFAR100, datasets.Quick, false},
		{"CIFAR-100", "full", datasets.CIFAR100, datasets.Full, false},
		{"cifaraug", "quick", datasets.CIFARAUG, datasets.Quick, false},
		{"chmnist", "quick", datasets.CHMNIST, datasets.Quick, false},
		{"purchase50", "quick", datasets.Purchase50, datasets.Quick, false},
		{"bogus", "quick", 0, 0, true},
		{"chmnist", "bogus", 0, 0, true},
	}
	for _, tt := range tests {
		p, s, err := ParseDataset(tt.name, tt.scale)
		if tt.wantErr {
			if err == nil {
				t.Errorf("ParseDataset(%q, %q) accepted", tt.name, tt.scale)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseDataset(%q, %q): %v", tt.name, tt.scale, err)
			continue
		}
		if p != tt.wantPreset || s != tt.wantScale {
			t.Errorf("ParseDataset(%q, %q) = (%v, %v), want (%v, %v)",
				tt.name, tt.scale, p, s, tt.wantPreset, tt.wantScale)
		}
	}
}

func TestArchFor(t *testing.T) {
	if got := ArchFor(datasets.Purchase50); got != model.MLP {
		t.Errorf("ArchFor(Purchase50) = %v, want MLP", got)
	}
	if got := ArchFor(datasets.CHMNIST); got != model.VGG {
		t.Errorf("ArchFor(CHMNIST) = %v, want VGG", got)
	}
}

func TestGlobalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.gob")
	params := []float64{1, 2, 3.5}
	if err := SaveGlobal(path, datasets.CHMNIST, datasets.Quick, 7, model.VGG, params); err != nil {
		t.Fatal(err)
	}
	g, err := LoadGlobal(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.Preset != datasets.CHMNIST || g.Seed != 7 || g.Arch != model.VGG {
		t.Fatalf("metadata lost: %+v", g)
	}
	for i, v := range params {
		if g.Params[i] != v {
			t.Fatalf("params[%d] = %v, want %v", i, g.Params[i], v)
		}
	}
}

func TestLoadGlobalMissing(t *testing.T) {
	if _, err := LoadGlobal(filepath.Join(t.TempDir(), "missing.gob")); err == nil {
		t.Fatal("expected error for missing file")
	}
}
