package flcli

import (
	"flag"
	"fmt"

	"github.com/cip-fl/cip/internal/fl/compress"
	"github.com/cip-fl/cip/internal/fl/wire"
)

// RegisterCodecFlag installs -codec on the default flag set. flserver uses
// it to accept binary-codec offers; flclient uses it to make them.
func RegisterCodecFlag() *string {
	return flag.String("codec", "",
		"wire codec: binary (length-prefixed frames, enables -compress) or gob/empty for the legacy stream")
}

// ParseCodec validates a -codec value, normalizing gob to the empty string
// the transport treats as the legacy default.
func ParseCodec(codec string) (string, error) {
	switch codec {
	case "", wire.CodecGob:
		return "", nil
	case wire.CodecBinary:
		return wire.CodecBinary, nil
	}
	return "", fmt.Errorf("unknown -codec %q (want binary or gob)", codec)
}

// CompressFlags bundles the update-compression flags flclient and ciptrain
// share. Register on the default flag set before flag.Parse, then Config
// or Bank after.
type CompressFlags struct {
	Mode     *string
	TopKFrac *float64
}

// RegisterCompressFlags installs -compress and -topk-frac on the default
// flag set.
func RegisterCompressFlags() *CompressFlags {
	return &CompressFlags{
		Mode: flag.String("compress", "",
			"update compression: topk, q8/int8, q16/int16, topk8, topk16; empty sends dense updates"),
		TopKFrac: flag.Float64("topk-frac", compress.DefaultTopKFrac,
			"fraction of coordinates the top-k modes keep, in (0, 1]"),
	}
}

// Config turns the parsed flags into a compression config (Mode None when
// -compress is empty). The mode string is normalized, so aliases like
// int8 reach the wire handshake in canonical form.
func (cf *CompressFlags) Config() (compress.Config, error) {
	mode, err := compress.ParseMode(*cf.Mode)
	if err != nil {
		return compress.Config{}, err
	}
	if *cf.TopKFrac <= 0 || *cf.TopKFrac > 1 {
		return compress.Config{}, fmt.Errorf("-topk-frac %v out of range (0, 1]", *cf.TopKFrac)
	}
	return compress.Config{Mode: mode, TopKFrac: *cf.TopKFrac}.WithDefaults(), nil
}

// Bank builds the server-side error-feedback bank for the in-process
// engine, or nil when compression is off.
func (cf *CompressFlags) Bank() (*compress.Bank, error) {
	cfg, err := cf.Config()
	if err != nil || cfg.Mode == compress.None {
		return nil, err
	}
	return compress.NewBank(cfg), nil
}
