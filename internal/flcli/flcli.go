// Package flcli holds the small amount of logic the multi-process FL
// commands (cmd/flserver, cmd/flclient) share: flag parsing for dataset
// presets and the on-disk format of a federated global model.
package flcli

import (
	"encoding/gob"
	"fmt"
	"os"
	"strings"

	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/model"
	"github.com/cip-fl/cip/internal/telemetry"
	"github.com/cip-fl/cip/internal/tensor"
)

// ParseDataset maps the CLI names onto presets and scales.
func ParseDataset(name, scaleName string) (datasets.Preset, datasets.Scale, error) {
	var p datasets.Preset
	switch strings.ToLower(name) {
	case "cifar100", "cifar-100":
		p = datasets.CIFAR100
	case "cifaraug", "cifar-aug":
		p = datasets.CIFARAUG
	case "chmnist", "ch-mnist":
		p = datasets.CHMNIST
	case "purchase50", "purchase-50":
		p = datasets.Purchase50
	default:
		return 0, 0, fmt.Errorf("unknown dataset %q (want cifar100, cifaraug, chmnist, purchase50)", name)
	}
	switch scaleName {
	case "quick":
		return p, datasets.Quick, nil
	case "full":
		return p, datasets.Full, nil
	default:
		return 0, 0, fmt.Errorf("unknown preset %q (want quick or full)", scaleName)
	}
}

// ArchFor picks the backbone family the multi-process federation uses for
// a dataset (VGG for images — the fast family — and MLP for tabular).
func ArchFor(p datasets.Preset) model.Arch {
	if p == datasets.Purchase50 {
		return model.MLP
	}
	return model.VGG
}

// Global is the on-disk format of a federated global model produced by
// flserver: enough metadata to reconstruct the architecture plus the
// parameter vector. Clients keep their own t; it is never part of this.
type Global struct {
	Preset datasets.Preset
	Scale  datasets.Scale
	Seed   int64
	Arch   model.Arch
	Params []float64
}

// SaveGlobal writes the global model with gob encoding.
func SaveGlobal(path string, p datasets.Preset, s datasets.Scale, seed int64,
	arch model.Arch, params []float64) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("flcli: saving global model: %w", err)
	}
	defer f.Close()
	g := Global{Preset: p, Scale: s, Seed: seed, Arch: arch, Params: params}
	if err := gob.NewEncoder(f).Encode(&g); err != nil {
		return fmt.Errorf("flcli: encoding global model: %w", err)
	}
	return nil
}

// LoadGlobal reads a global model written by SaveGlobal.
func LoadGlobal(path string) (*Global, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("flcli: loading global model: %w", err)
	}
	defer f.Close()
	var g Global
	if err := gob.NewDecoder(f).Decode(&g); err != nil {
		return nil, fmt.Errorf("flcli: decoding global model: %w", err)
	}
	return &g, nil
}

// StartTelemetry starts the opt-in telemetry endpoint every FL command
// exposes behind -metrics-addr. An empty addr disables telemetry and
// returns a nil registry (whose metrics are all no-ops). The returned
// stop function is safe to call on the nil-telemetry path too.
func StartTelemetry(addr string) (*telemetry.Registry, func(), error) {
	if addr == "" {
		return nil, func() {}, nil
	}
	reg := telemetry.NewRegistry()
	tensor.EnableMetrics(reg)
	srv, err := telemetry.Serve(addr, reg)
	if err != nil {
		return nil, nil, err
	}
	fmt.Printf("telemetry: http://%s/metrics (Prometheus), /debug/vars (expvar), /debug/pprof\n",
		srv.Addr())
	return reg, func() { srv.Close() }, nil //nolint:errcheck
}
