// Package flcli holds the small amount of logic the multi-process FL
// commands (cmd/flserver, cmd/flclient) share: flag parsing for dataset
// presets and the on-disk format of a federated global model.
package flcli

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/fl/checkpoint"
	"github.com/cip-fl/cip/internal/model"
	"github.com/cip-fl/cip/internal/telemetry"
	"github.com/cip-fl/cip/internal/tensor"
)

// ParseDataset maps the CLI names onto presets and scales.
func ParseDataset(name, scaleName string) (datasets.Preset, datasets.Scale, error) {
	var p datasets.Preset
	switch strings.ToLower(name) {
	case "cifar100", "cifar-100":
		p = datasets.CIFAR100
	case "cifaraug", "cifar-aug":
		p = datasets.CIFARAUG
	case "chmnist", "ch-mnist":
		p = datasets.CHMNIST
	case "purchase50", "purchase-50":
		p = datasets.Purchase50
	default:
		return 0, 0, fmt.Errorf("unknown dataset %q (want cifar100, cifaraug, chmnist, purchase50)", name)
	}
	switch scaleName {
	case "quick":
		return p, datasets.Quick, nil
	case "full":
		return p, datasets.Full, nil
	default:
		return 0, 0, fmt.Errorf("unknown preset %q (want quick or full)", scaleName)
	}
}

// ArchFor picks the backbone family the multi-process federation uses for
// a dataset (VGG for images — the fast family — and MLP for tabular).
func ArchFor(p datasets.Preset) model.Arch {
	if p == datasets.Purchase50 {
		return model.MLP
	}
	return model.VGG
}

// Global is the on-disk format of a federated global model produced by
// flserver: enough metadata to reconstruct the architecture plus the
// parameter vector. Clients keep their own t; it is never part of this.
type Global struct {
	Preset datasets.Preset
	Scale  datasets.Scale
	Seed   int64
	Arch   model.Arch
	Params []float64
}

// maxModelFileBytes caps how much of a model file either loader will
// read: global models and artifacts at our scales are a few MiB, so 1 GiB
// is an absurdly generous bound that still stops a mislabeled or hostile
// multi-terabyte file from reaching the decoder.
const maxModelFileBytes = 1 << 30

// SaveGlobal writes the global model atomically in the checksummed
// checkpoint container format (temp file → fsync → rename), so a crash
// mid-save can never leave a silently truncated model behind.
func SaveGlobal(path string, p datasets.Preset, s datasets.Scale, seed int64,
	arch model.Arch, params []float64) error {
	g := Global{Preset: p, Scale: s, Seed: seed, Arch: arch, Params: params}
	if err := checkpoint.WriteFile(path, checkpoint.KindGlobal, &g); err != nil {
		return fmt.Errorf("flcli: saving global model: %w", err)
	}
	return nil
}

// LoadGlobal reads a global model written by SaveGlobal. Containerized
// files are validated end to end (magic, kind, length, checksum) before
// decoding; files from before the container format fall back to a raw,
// byte-bounded gob decode. Corruption surfaces as a clean error either
// way, never a panic or an unbounded allocation.
func LoadGlobal(path string) (*Global, error) {
	var g Global
	err := checkpoint.ReadFile(path, checkpoint.KindGlobal, maxModelFileBytes, &g)
	if errors.Is(err, checkpoint.ErrNotCheckpoint) {
		return loadGlobalLegacy(path)
	}
	if err != nil {
		return nil, fmt.Errorf("flcli: loading global model: %w", err)
	}
	return &g, nil
}

func loadGlobalLegacy(path string) (*Global, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("flcli: loading global model: %w", err)
	}
	defer f.Close()
	var g Global
	if err := decodeBounded(f, &g); err != nil {
		return nil, fmt.Errorf("flcli: decoding global model %s: %w", path, err)
	}
	return &g, nil
}

// decodeBounded gob-decodes one value from r reading at most
// maxModelFileBytes, converting decoder panics into errors so legacy
// (uncontainerized, unchecksummed) files degrade cleanly.
func decodeBounded(r io.Reader, v any) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("decode panicked: %v", p)
		}
	}()
	return gob.NewDecoder(io.LimitReader(r, maxModelFileBytes)).Decode(v)
}

// ShutdownSignal installs SIGINT/SIGTERM handling shared by every FL
// command: the returned channel closes on the first signal (callers treat
// it as a graceful round-boundary stop), and a second signal exits
// immediately with status 1 for operators who really mean it.
func ShutdownSignal() <-chan struct{} {
	stop := make(chan struct{})
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "shutdown requested; finishing the current round (signal again to abort)")
		close(stop)
		<-sigs
		fmt.Fprintln(os.Stderr, "aborting")
		os.Exit(1)
	}()
	return stop
}

// StartTelemetry starts the opt-in telemetry endpoint every FL command
// exposes behind -metrics-addr. An empty addr disables telemetry and
// returns a nil registry (whose metrics are all no-ops). The returned
// stop function is safe to call on the nil-telemetry path too.
func StartTelemetry(addr string) (*telemetry.Registry, func(), error) {
	if addr == "" {
		return nil, func() {}, nil
	}
	reg := telemetry.NewRegistry()
	tensor.EnableMetrics(reg)
	srv, err := telemetry.Serve(addr, reg)
	if err != nil {
		return nil, nil, err
	}
	fmt.Printf("telemetry: http://%s/metrics (Prometheus), /debug/vars (expvar), /debug/pprof\n",
		srv.Addr())
	return reg, func() { srv.Close() }, nil //nolint:errcheck
}
