package rng

import (
	"math/rand"
	"testing"
)

func TestDeterministicStream(t *testing.T) {
	a, _ := New(42)
	b, _ := New(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestStateRoundTrip(t *testing.T) {
	r, src := New(7)
	for i := 0; i < 137; i++ {
		r.Float64()
	}
	saved := src.State()
	want := make([]float64, 50)
	for i := range want {
		want[i] = r.Float64()
	}
	// Restoring the state must replay the identical suffix, including
	// through the distribution methods layered on by rand.Rand.
	src.SetState(saved)
	for i := range want {
		if got := r.Float64(); got != want[i] {
			t.Fatalf("draw %d after restore: got %v, want %v", i, got, want[i])
		}
	}
	// A fresh rand.Rand over a restored source is equivalent too: the
	// wrapper holds no hidden state for the methods we use.
	src2 := NewSource(0)
	src2.SetState(saved)
	r2 := rand.New(src2)
	src.SetState(saved)
	for i := 0; i < 50; i++ {
		if r.Perm(10)[0] != r2.Perm(10)[0] {
			t.Fatalf("restored source + fresh rand.Rand diverged at %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, _ := New(1)
	b, _ := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 identical draws across different seeds", same)
	}
}

func TestUniformish(t *testing.T) {
	r, _ := New(3)
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; mean < 0.48 || mean > 0.52 {
		t.Fatalf("mean of %d uniform draws = %v, want ≈0.5", n, mean)
	}
}
