// Package rng provides a serializable random-number source for the parts
// of the federation that must survive process death: unlike the stdlib's
// rand.NewSource, whose internal state cannot be extracted, a Source here
// exposes its full state as a single uint64, so a checkpoint can capture
// the exact position of a random stream and a resumed run can continue it
// bit-identically (DESIGN.md §10).
//
// The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA'14): a 64-bit
// state advanced by a Weyl constant and finalized by an avalanching mixer.
// It passes BigCrush, is allocation-free, and — the property everything
// here is built for — its entire state is the one counter word.
package rng

import "math/rand"

// Source is a SplitMix64 random source. It implements rand.Source64, so
// rand.New(src) layers the full math/rand distribution API on top; as long
// as the consumer avoids rand.Rand.Read (the only buffered method), the
// wrapped rand.Rand carries no hidden state and State/SetState capture it
// completely.
type Source struct {
	state uint64
}

// NewSource returns a Source seeded with seed.
func NewSource(seed int64) *Source {
	return &Source{state: uint64(seed)}
}

// New returns a rand.Rand driven by a fresh Source, plus the Source itself
// so callers can capture and restore its state.
func New(seed int64) (*rand.Rand, *Source) {
	src := NewSource(seed)
	return rand.New(src), src
}

// Uint64 implements rand.Source64.
func (s *Source) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Int63 implements rand.Source.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Seed implements rand.Source.
func (s *Source) Seed(seed int64) {
	s.state = uint64(seed)
}

// State returns the generator's complete internal state.
func (s *Source) State() uint64 { return s.state }

// SetState restores a state previously returned by State. The next draw
// after SetState equals the next draw after the matching State call.
func (s *Source) SetState(v uint64) { s.state = v }
