// Package model provides the backbone zoo used throughout the evaluation:
// CPU-scale stand-ins for the paper's ResNet-50, DenseNet, VGG, and MLP
// backbones. Each tiny backbone keeps the connectivity pattern that
// characterizes its family (identity skips, channel concatenation, plain
// stacking) and the families keep the paper's relative capacity ordering
// (ResNet > DenseNet > VGG in parameter count, Table XI).
//
// A backbone maps an input batch to a flat feature matrix [N, FeatDim],
// and a Classifier attaches a dense softmax head. The backbone is exposed
// separately because CIP's dual-channel architecture (paper Fig. 3) runs
// two blended inputs through one shared backbone.
//
// The paper's backbones end in global average pooling over 512-2048
// channel maps; at our 8×8 resolution with ≤26 channels GAP would collapse
// the representation to a handful of scalars, destroying both accuracy and
// the memorization capacity membership inference feeds on. The tiny
// backbones therefore end in a flatten of the final (pooled) feature maps,
// which preserves an equivalent relative feature capacity — the
// dual-channel head consumes the flat feature vector either way.
package model

import (
	"fmt"
	"math/rand"

	"github.com/cip-fl/cip/internal/nn"
	"github.com/cip-fl/cip/internal/tensor"
)

// Arch selects a backbone family.
type Arch int

// Backbone families. The image families mirror the paper's three
// convolutional backbones; MLP is the Purchase-50 tabular model.
const (
	ResNet Arch = iota + 1
	DenseNet
	VGG
	MLP
)

// String returns the family name.
func (a Arch) String() string {
	switch a {
	case ResNet:
		return "ResNet"
	case DenseNet:
		return "DenseNet"
	case VGG:
		return "VGG"
	case MLP:
		return "MLP"
	default:
		return fmt.Sprintf("Arch(%d)", int(a))
	}
}

// Input describes the model input: C×H×W images when H and W are non-zero,
// otherwise flat feature vectors of length C.
type Input struct {
	C, H, W int
}

// IsImage reports whether the input is a spatial image.
func (in Input) IsImage() bool { return in.H > 0 && in.W > 0 }

// Size returns the number of scalars in one input sample.
func (in Input) Size() int {
	if in.IsImage() {
		return in.C * in.H * in.W
	}
	return in.C
}

// Backbone is a feature extractor ending in a flat [N, FeatDim] output.
type Backbone struct {
	Net     nn.Layer
	FeatDim int
}

// Forward implements nn.Layer.
func (b *Backbone) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, nn.Cache) {
	return b.Net.Forward(x, train)
}

// Backward implements nn.Layer.
func (b *Backbone) Backward(cache nn.Cache, grad *tensor.Tensor) *tensor.Tensor {
	return b.Net.Backward(cache, grad)
}

// BackwardParams implements nn.ParamBackprop.
func (b *Backbone) BackwardParams(cache nn.Cache, grad *tensor.Tensor) {
	nn.TrainBackward(b.Net, cache, grad)
}

// Params implements nn.Layer.
func (b *Backbone) Params() []*nn.Param { return b.Net.Params() }

// NewBackbone builds a backbone of the given family for the given input.
func NewBackbone(rng *rand.Rand, arch Arch, in Input) *Backbone {
	switch arch {
	case ResNet:
		return newTinyResNet(rng, in)
	case DenseNet:
		return newTinyDenseNet(rng, in)
	case VGG:
		return newTinyVGG(rng, in)
	case MLP:
		return newMLP(rng, in)
	default:
		panic(fmt.Sprintf("model: unknown architecture %v", arch))
	}
}

func assertImage(arch Arch, in Input) {
	if !in.IsImage() {
		panic(fmt.Sprintf("model: %v backbone requires image input, got %+v", arch, in))
	}
}

// newTinyResNet: stem conv + two residual stages. Widest of the zoo,
// mirroring ResNet-50 being the largest backbone in the paper's Table XI.
func newTinyResNet(rng *rand.Rand, in Input) *Backbone {
	assertImage(ResNet, in)
	const width = 16
	stem := tensor.ConvGeom{InC: in.C, InH: in.H, InW: in.W, KH: 3, KW: 3, Stride: 1, Pad: 1}
	resGeom := tensor.ConvGeom{InC: width, InH: in.H, InW: in.W, KH: 3, KW: 3, Stride: 1, Pad: 1}
	// Batch norm is deliberately absent: the FL substrate exchanges exactly
	// the parameter vector, and BN running statistics live outside it.
	// Without BN, stacked identity skips compound activation variance, so
	// the residual branch's closing conv starts near zero (the standard
	// zero-init-residual trick) and each block begins as the identity.
	block := func(g tensor.ConvGeom) nn.Layer {
		closing := nn.NewConv2D(rng, g, width)
		tensor.ScaleInPlace(closing.W.Value, 0.05)
		return &nn.Residual{Body: nn.NewSequential(
			nn.NewConv2D(rng, g, width),
			nn.ReLU{},
			closing,
		)}
	}
	ph, pw := in.H/2, in.W/2
	resGeom2 := tensor.ConvGeom{InC: width, InH: ph, InW: pw, KH: 3, KW: 3, Stride: 1, Pad: 1}
	net := nn.NewSequential(
		nn.NewConv2D(rng, stem, width),
		nn.ReLU{},
		block(resGeom),
		nn.ReLU{},
		nn.MaxPool2D{Size: 2},
		block(resGeom2),
		nn.ReLU{},
		nn.Flatten{},
	)
	return &Backbone{Net: net, FeatDim: width * ph * pw}
}

// newTinyDenseNet: stem conv + two concatenative dense blocks.
func newTinyDenseNet(rng *rand.Rand, in Input) *Backbone {
	assertImage(DenseNet, in)
	const (
		stemC  = 8
		growth = 6
	)
	stem := tensor.ConvGeom{InC: in.C, InH: in.H, InW: in.W, KH: 3, KW: 3, Stride: 1, Pad: 1}
	dense := func(c, h, w int) nn.Layer {
		g := tensor.ConvGeom{InC: c, InH: h, InW: w, KH: 3, KW: 3, Stride: 1, Pad: 1}
		return &nn.DenseBlock{Body: nn.NewSequential(
			nn.NewConv2D(rng, g, growth),
			nn.ReLU{},
		)}
	}
	c1 := stemC + growth
	c2 := c1 + growth
	ph, pw := in.H/2, in.W/2
	net := nn.NewSequential(
		nn.NewConv2D(rng, stem, stemC),
		nn.ReLU{},
		dense(stemC, in.H, in.W),
		dense(c1, in.H, in.W),
		nn.MaxPool2D{Size: 2},
		dense(c2, ph, pw),
		nn.ReLU{},
		nn.Flatten{},
	)
	return &Backbone{Net: net, FeatDim: (c2 + growth) * ph * pw}
}

// newTinyVGG: plain conv/pool stacking, the smallest family.
func newTinyVGG(rng *rand.Rand, in Input) *Backbone {
	assertImage(VGG, in)
	const w1, w2 = 10, 14
	g1 := tensor.ConvGeom{InC: in.C, InH: in.H, InW: in.W, KH: 3, KW: 3, Stride: 1, Pad: 1}
	g2 := tensor.ConvGeom{InC: w1, InH: in.H, InW: in.W, KH: 3, KW: 3, Stride: 1, Pad: 1}
	ph, pw := in.H/2, in.W/2
	g3 := tensor.ConvGeom{InC: w1, InH: ph, InW: pw, KH: 3, KW: 3, Stride: 1, Pad: 1}
	net := nn.NewSequential(
		nn.NewConv2D(rng, g1, w1),
		nn.ReLU{},
		nn.NewConv2D(rng, g2, w1),
		nn.ReLU{},
		nn.MaxPool2D{Size: 2},
		nn.NewConv2D(rng, g3, w2),
		nn.ReLU{},
		nn.Flatten{},
	)
	return &Backbone{Net: net, FeatDim: w2 * ph * pw}
}

// newMLP: the paper's Purchase-50 model — three dense layers (512/256/128).
func newMLP(rng *rand.Rand, in Input) *Backbone {
	if in.IsImage() {
		panic(fmt.Sprintf("model: MLP backbone requires flat input, got %+v", in))
	}
	net := nn.NewSequential(
		nn.NewDense(rng, in.C, 512),
		nn.ReLU{},
		nn.NewDense(rng, 512, 256),
		nn.ReLU{},
		nn.NewDense(rng, 256, 128),
		nn.ReLU{},
	)
	return &Backbone{Net: net, FeatDim: 128}
}

// Classifier is a backbone plus a dense softmax head producing logits.
// It implements nn.Layer.
type Classifier struct {
	Arch       Arch
	In         Input
	NumClasses int
	Backbone   *Backbone
	Head       *nn.Dense

	net *nn.Sequential
}

// NewClassifier builds a classifier of the given family.
func NewClassifier(rng *rand.Rand, arch Arch, in Input, numClasses int) *Classifier {
	bb := NewBackbone(rng, arch, in)
	head := nn.NewDense(rng, bb.FeatDim, numClasses)
	return &Classifier{
		Arch:       arch,
		In:         in,
		NumClasses: numClasses,
		Backbone:   bb,
		Head:       head,
		net:        nn.NewSequential(bb, head),
	}
}

// Forward implements nn.Layer.
func (c *Classifier) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, nn.Cache) {
	return c.net.Forward(x, train)
}

// Backward implements nn.Layer.
func (c *Classifier) Backward(cache nn.Cache, grad *tensor.Tensor) *tensor.Tensor {
	return c.net.Backward(cache, grad)
}

// BackwardParams implements nn.ParamBackprop.
func (c *Classifier) BackwardParams(cache nn.Cache, grad *tensor.Tensor) {
	c.net.BackwardParams(cache, grad)
}

// Params implements nn.Layer.
func (c *Classifier) Params() []*nn.Param { return c.net.Params() }

// NumParams returns the number of scalar parameters.
func (c *Classifier) NumParams() int { return nn.NumParams(c.Params()) }

var _ nn.Layer = (*Classifier)(nil)
var _ nn.Layer = (*Backbone)(nil)
