package model

import (
	"math/rand"
	"testing"

	"github.com/cip-fl/cip/internal/nn"
	"github.com/cip-fl/cip/internal/tensor"
)

var imgIn = Input{C: 3, H: 8, W: 8}

func TestBackboneShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, arch := range []Arch{ResNet, DenseNet, VGG} {
		t.Run(arch.String(), func(t *testing.T) {
			bb := NewBackbone(rng, arch, imgIn)
			x := tensor.New(2, imgIn.C, imgIn.H, imgIn.W)
			x.RandNormal(rng, 0, 1)
			out, _ := bb.Forward(x, true)
			if out.Shape[0] != 2 || out.Shape[1] != bb.FeatDim {
				t.Fatalf("%v backbone output shape = %v, want [2 %d]", arch, out.Shape, bb.FeatDim)
			}
		})
	}
}

func TestMLPBackboneShape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	bb := NewBackbone(rng, MLP, Input{C: 30})
	x := tensor.New(3, 30)
	x.RandNormal(rng, 0, 1)
	out, _ := bb.Forward(x, false)
	if out.Shape[0] != 3 || out.Shape[1] != 128 {
		t.Fatalf("MLP output shape = %v, want [3 128]", out.Shape)
	}
}

func TestClassifierLogitsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := NewClassifier(rng, VGG, imgIn, 10)
	x := tensor.New(4, imgIn.C, imgIn.H, imgIn.W)
	x.RandNormal(rng, 0, 1)
	logits, _ := c.Forward(x, false)
	if logits.Shape[0] != 4 || logits.Shape[1] != 10 {
		t.Fatalf("logits shape = %v, want [4 10]", logits.Shape)
	}
}

// TestParamOrdering reproduces Table XI's capacity ordering:
// ResNet > DenseNet > VGG.
func TestParamOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	r := NewClassifier(rng, ResNet, imgIn, 10).NumParams()
	d := NewClassifier(rng, DenseNet, imgIn, 10).NumParams()
	v := NewClassifier(rng, VGG, imgIn, 10).NumParams()
	if !(r > d && d > v) {
		t.Fatalf("param ordering ResNet(%d) > DenseNet(%d) > VGG(%d) violated", r, d, v)
	}
}

func TestClassifierGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	small := Input{C: 2, H: 6, W: 6}
	for _, arch := range []Arch{ResNet, DenseNet, VGG} {
		t.Run(arch.String(), func(t *testing.T) {
			c := NewClassifier(rng, arch, small, 3)
			x := tensor.New(2, small.C, small.H, small.W)
			x.RandNormal(rng, 0, 1)
			labels := []int{0, 2}
			if rel := nn.GradCheck(c, x, labels, 97); rel > 1e-3 {
				t.Fatalf("%v grad check max relative error %v", arch, rel)
			}
		})
	}
}

func TestClassifierLearnsSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c := NewClassifier(rng, VGG, Input{C: 1, H: 6, W: 6}, 2)
	// Class 0: bright top half. Class 1: bright bottom half.
	n := 16
	x := tensor.New(n, 1, 6, 6)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		labels[i] = i % 2
		for y := 0; y < 6; y++ {
			for xx := 0; xx < 6; xx++ {
				v := 0.1 * rng.NormFloat64()
				if (labels[i] == 0) == (y < 3) {
					v += 1
				}
				x.Set(v, i, 0, y, xx)
			}
		}
	}
	opt := &nn.SGD{LR: 0.05, Momentum: 0.9}
	for i := 0; i < 40; i++ {
		nn.ZeroGrads(c.Params())
		logits, cache := c.Forward(x, true)
		res := nn.SoftmaxCrossEntropy(logits, labels)
		c.Backward(cache, res.Grad)
		opt.Step(c.Params())
	}
	logits, _ := c.Forward(x, false)
	if acc := nn.Accuracy(logits, labels); acc < 0.9 {
		t.Fatalf("classifier failed to fit separable data: accuracy %v", acc)
	}
}

func TestMLPRequiresFlatInput(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for MLP with image input")
		}
	}()
	NewBackbone(rng, MLP, imgIn)
}

func TestImageArchRequiresImageInput(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for conv backbone with flat input")
		}
	}()
	NewBackbone(rng, ResNet, Input{C: 20})
}

func TestArchString(t *testing.T) {
	tests := map[Arch]string{ResNet: "ResNet", DenseNet: "DenseNet", VGG: "VGG", MLP: "MLP"}
	for arch, want := range tests {
		if got := arch.String(); got != want {
			t.Errorf("Arch(%d).String() = %q, want %q", int(arch), got, want)
		}
	}
}

func TestInputSize(t *testing.T) {
	if got := (Input{C: 3, H: 4, W: 5}).Size(); got != 60 {
		t.Errorf("image input size = %d, want 60", got)
	}
	if got := (Input{C: 17}).Size(); got != 17 {
		t.Errorf("flat input size = %d, want 17", got)
	}
}
