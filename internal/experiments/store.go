package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"github.com/cip-fl/cip/internal/fl/checkpoint"
)

// Store persists completed experiment grid cells — one rendered Table per
// (experiment id, scale, seed) — in the checksummed checkpoint container
// format, so a multi-hour sweep killed partway through does not redo
// finished cells on the next run. A nil *Store disables caching; corrupt
// or unreadable cells are treated as missing and recomputed.
type Store struct {
	// Dir is the cache directory; it is created on first Save.
	Dir string
}

// cellPath names the cache file for one grid cell.
func (s *Store) cellPath(id string, cfg Config) string {
	return filepath.Join(s.Dir, fmt.Sprintf("%s_scale%d_seed%d.cell", id, cfg.Scale, cfg.Seed))
}

// Load returns the cached table for a cell, with ok reporting whether a
// valid one exists.
func (s *Store) Load(id string, cfg Config) (t *Table, ok bool) {
	if s == nil {
		return nil, false
	}
	var tab Table
	if err := checkpoint.ReadFile(s.cellPath(id, cfg), checkpoint.KindTable,
		checkpoint.DefaultMaxBytes, &tab); err != nil {
		return nil, false
	}
	return &tab, true
}

// Save persists a completed cell atomically.
func (s *Store) Save(id string, cfg Config, t *Table) error {
	if s == nil {
		return nil
	}
	if err := os.MkdirAll(s.Dir, 0o755); err != nil {
		return fmt.Errorf("experiments: creating cell store: %w", err)
	}
	if err := checkpoint.WriteFile(s.cellPath(id, cfg), checkpoint.KindTable, t); err != nil {
		return fmt.Errorf("experiments: saving cell %s: %w", s.cellPath(id, cfg), err)
	}
	return nil
}

// Runner wraps r with cell caching: a hit returns the stored table, a miss
// runs r and persists the result before returning it.
func (s *Store) Runner(id string, r Runner) Runner {
	if s == nil {
		return r
	}
	return func(cfg Config) (*Table, error) {
		if t, ok := s.Load(id, cfg); ok {
			return t, nil
		}
		t, err := r(cfg)
		if err != nil {
			return nil, err
		}
		if err := s.Save(id, cfg, t); err != nil {
			return nil, err
		}
		return t, nil
	}
}

// Run executes one registered experiment through the cache.
func (s *Store) Run(id string, cfg Config) (*Table, error) {
	r, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q", id)
	}
	return s.Runner(id, r)(cfg)
}

// Repeat is Repeat with per-seed cell caching: each seed's table persists
// as its own grid cell, so an interrupted multi-seed sweep resumes from
// the completed seeds.
func (s *Store) Repeat(id string, cfg Config, n int) (*Table, error) {
	r, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q", id)
	}
	return RepeatRunner(id, s.Runner(id, r), cfg, n)
}
