package experiments

import (
	"fmt"
	"math/rand"

	"github.com/cip-fl/cip/internal/attacks"
	"github.com/cip-fl/cip/internal/core"
	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/metrics"
	"github.com/cip-fl/cip/internal/nn"
)

func rq4Alphas(s datasets.Scale) []float64 {
	if s == datasets.Full {
		return []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	}
	return []float64{0.1, 0.5, 0.9}
}

// adaptiveIters returns the number of probe-optimization epochs the
// adaptive attacker runs (§V-D gives the attacker a large query budget).
func adaptiveIters(s datasets.Scale) int {
	if s == datasets.Full {
		return 10
	}
	return 4
}

// Table6 reproduces Table VI: the [Optimization-1] adaptive attack —
// probe the model, optimize a guessed perturbation t′ on shadow data, then
// run the loss-threshold attack through t′. The internal variant probes
// the victim's local model from a late round; the external variant probes
// the final global model.
func Table6(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "table6",
		Title:  "RQ4 [Optimization-1]: probe + t' optimization attack accuracy (internal/external)",
		Header: []string{"dataset", "alpha", "internal", "external"},
	}
	rounds := 22
	if cfg.Scale == datasets.Full {
		rounds = 50
	}
	for _, p := range rq3Presets(cfg.Scale) {
		d, err := datasets.Load(p, cfg.Scale, cfg.Seed)
		if err != nil {
			return nil, err
		}
		split := splitForAttack(d)
		for _, a := range rq4Alphas(cfg.Scale) {
			crun, err := runCIP(split.TargetTrain, archFor(p, cfg.Scale), 2, rounds, a, cfg.Seed,
				cipOpts{keepRounds: lastRounds(rounds, 1), augment: d.Augment})
			if err != nil {
				return nil, err
			}
			members, nonMembers := equalize(crun.Clients[0].Data(), split.NonMembers)
			rng := rand.New(rand.NewSource(cfg.Seed + 11))
			iters := adaptiveIters(cfg.Scale)

			// External: probe the final global model.
			ext := attacks.Optimization1(crun.globalModel(nil), split.ShadowTrain,
				members, nonMembers, iters, 0.02, rng)

			// Internal: probe the victim's local model from the last round.
			kept := crun.Recorder.KeptRounds()
			intAcc := ext.Accuracy()
			if len(kept) > 0 {
				local := crun.globalModel(nil)
				if err := nn.SetFlatParams(local.Params(), kept[len(kept)-1].LocalParams[0]); err != nil {
					return nil, err
				}
				intRes := attacks.Optimization1(local, split.ShadowTrain,
					members, nonMembers, iters, 0.02, rng)
				intAcc = intRes.Accuracy()
			}
			t.AddRow(p.String(), fmt.Sprintf("%.1f", a), f3(intAcc), f3(ext.Accuracy()))
		}
	}
	return t, nil
}

// Table7 reproduces Table VII: the [Optimization-2] adaptive attack — the
// malicious server actively lowers the targets' loss in the model sent to
// the victim, then classifies samples whose loss stays high as members
// (exploiting CIP's deliberate loss increase on original member data).
func Table7(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "table7",
		Title:  "RQ4 [Optimization-2]: internal active alteration attack accuracy",
		Header: []string{"dataset", "alpha", "attack acc"},
	}
	rounds := 22
	if cfg.Scale == datasets.Full {
		rounds = 50
	}
	for _, p := range rq3Presets(cfg.Scale) {
		d, err := datasets.Load(p, cfg.Scale, cfg.Seed)
		if err != nil {
			return nil, err
		}
		for _, a := range rq4Alphas(cfg.Scale) {
			acc, err := cipActiveAttack(d, archFor(p, cfg.Scale), 2, rounds, a, cfg.Seed, 0, true)
			if err != nil {
				return nil, err
			}
			t.AddRow(p.String(), fmt.Sprintf("%.1f", a), f3(acc))
		}
	}
	return t, nil
}

// Table8 reproduces Table VIII: the [Knowledge-1] adaptive attack — the
// adversary knows α and a seed with a given SSIM to the client's true
// initialization seed, optimizes t′ from it, and attacks through t′
// (α = 0.7 as in the paper).
func Table8(cfg Config) (*Table, error) {
	ssims := []float64{0.1, 0.5, 1.0}
	if cfg.Scale == datasets.Full {
		ssims = []float64{0.1, 0.3, 0.5, 0.7, 1.0}
	}
	header := []string{"dataset"}
	for _, s := range ssims {
		header = append(header, fmt.Sprintf("SSIM=%.1f", s))
	}
	t := &Table{
		ID:     "table8",
		Title:  "RQ4 [Knowledge-1]: attack accuracy vs seed SSIM (alpha=0.7)",
		Header: header,
	}
	rounds := 22
	if cfg.Scale == datasets.Full {
		rounds = 50
	}
	for _, p := range rq3Presets(cfg.Scale) {
		d, err := datasets.Load(p, cfg.Scale, cfg.Seed)
		if err != nil {
			return nil, err
		}
		split := splitForAttack(d)
		crun, err := runCIP(split.TargetTrain, archFor(p, cfg.Scale), 1, rounds, 0.7, cfg.Seed,
			cipOpts{augment: d.Augment})
		if err != nil {
			return nil, err
		}
		members, nonMembers := equalize(crun.Clients[0].Data(), split.NonMembers)
		pert := crun.Clients[0].Perturbation()
		trueSeed := core.NewPerturbation(pert.Seed, pert.T.Shape, 0, 1).T
		m := crun.globalModel(nil)
		rng := rand.New(rand.NewSource(cfg.Seed + 13))

		row := []string{p.String()}
		for _, s := range ssims {
			res, _ := attacks.Knowledge1(m, trueSeed, s, split.ShadowTrain,
				members, nonMembers, adaptiveIters(cfg.Scale), 0.02, rng)
			row = append(row, f3(res.Accuracy()))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Table9 reproduces Table IX: the [Knowledge-2] adaptive attack — the
// adversary holds a fraction of the victim's training data, derives t′
// from it, and attacks the membership of the unknown remainder.
func Table9(cfg Config) (*Table, error) {
	fracs := []float64{0.2, 0.4, 0.6, 0.8}
	header := []string{"dataset"}
	for _, f := range fracs {
		header = append(header, fmt.Sprintf("%.0f%% known", f*100))
	}
	t := &Table{
		ID:     "table9",
		Title:  "RQ4 [Knowledge-2]: attack accuracy vs fraction of known training data (alpha=0.7)",
		Header: header,
	}
	rounds := 22
	if cfg.Scale == datasets.Full {
		rounds = 50
	}
	for _, p := range rq3Presets(cfg.Scale) {
		d, err := datasets.Load(p, cfg.Scale, cfg.Seed)
		if err != nil {
			return nil, err
		}
		split := splitForAttack(d)
		crun, err := runCIP(split.TargetTrain, archFor(p, cfg.Scale), 1, rounds, 0.7, cfg.Seed,
			cipOpts{augment: d.Augment})
		if err != nil {
			return nil, err
		}
		m := crun.globalModel(nil)
		rng := rand.New(rand.NewSource(cfg.Seed + 17))

		memberSet := crun.Clients[0].Data()
		row := []string{p.String()}
		for _, f := range fracs {
			known, unknown := memberSet.Split(int(f * float64(memberSet.Len())))
			um, nm := equalize(unknown, split.NonMembers)
			res := attacks.Knowledge2(m, known, um, nm, adaptiveIters(cfg.Scale), 0.02, rng)
			row = append(row, f3(res.Accuracy()))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Knowledge3Exp reproduces the §V-D [Knowledge-3] experiment: a malicious
// FL client substitutes its OWN perturbation t′ for the victim's t under
// an iid distribution, reporting the test accuracy with both perturbations,
// the train/test gap, the attack accuracy, and SSIM(t, t′).
func Knowledge3Exp(cfg Config) (*Table, error) {
	d, err := datasets.Load(datasets.CIFAR100, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	k := 3
	rounds := 22
	if cfg.Scale == datasets.Full {
		k = 5
		rounds = 50
	}
	split := splitForAttack(d)
	// iid partition as §V-D specifies; α = 0.9 is the deployment setting —
	// at low α the (1+α)x−αt channel carries enough raw x for a substitute
	// perturbation to transfer, which the paper's full-scale models resist.
	crun, err := runCIP(split.TargetTrain, archFor(datasets.CIFAR100, cfg.Scale), k, rounds, 0.9,
		cfg.Seed, cipOpts{})
	if err != nil {
		return nil, err
	}
	victim := crun.Clients[0]
	attacker := crun.Clients[1]
	members, nonMembers := equalize(crun.Clients[0].Data(), split.NonMembers)

	mTrue := crun.globalModel(nil).WithT(victim.Perturbation().T)
	mSub := crun.globalModel(nil).WithT(attacker.Perturbation().T)

	res := attacks.Knowledge3(crun.globalModel(nil), attacker.Perturbation().T,
		members, nonMembers)
	ssim := metrics.SSIM(victim.Perturbation().T.Data, attacker.Perturbation().T.Data, 1)

	t := &Table{
		ID:     "k3",
		Title:  "RQ4 [Knowledge-3]: substitute t' from a malicious client (iid)",
		Header: []string{"quantity", "value"},
	}
	t.AddRow("test acc (true t)", f3(fl.Evaluate(mTrue, d.Test, 64)))
	t.AddRow("test acc (substitute t')", f3(fl.Evaluate(mSub, d.Test, 64)))
	t.AddRow("train acc (true t)", f3(fl.Evaluate(mTrue, members, 64)))
	t.AddRow("train acc (substitute t')", f3(fl.Evaluate(mSub, members, 64)))
	t.AddRow("attack acc (with t')", f3(res.Accuracy()))
	t.AddRow("SSIM(t, t')", f3(ssim))
	return t, nil
}

// Table10 reproduces Table X: the [Knowledge-4] inverse membership
// inference attack — classify abnormally high zero-perturbation loss as
// member. Against CIP this rule misfires, landing at or below chance.
func Table10(cfg Config) (*Table, error) {
	header := []string{"dataset"}
	for _, a := range rq4Alphas(cfg.Scale) {
		header = append(header, fmt.Sprintf("alpha=%.1f", a))
	}
	t := &Table{
		ID:     "table10",
		Title:  "RQ4 [Knowledge-4]: inverse MI attack accuracy",
		Header: header,
	}
	rounds := 22
	if cfg.Scale == datasets.Full {
		rounds = 50
	}
	for _, p := range rq3Presets(cfg.Scale) {
		d, err := datasets.Load(p, cfg.Scale, cfg.Seed)
		if err != nil {
			return nil, err
		}
		split := splitForAttack(d)
		row := []string{p.String()}
		for _, a := range rq4Alphas(cfg.Scale) {
			crun, err := runCIP(split.TargetTrain, archFor(p, cfg.Scale), 1, rounds, a, cfg.Seed,
				cipOpts{augment: d.Augment})
			if err != nil {
				return nil, err
			}
			members, nonMembers := equalize(crun.Clients[0].Data(), split.NonMembers)
			res := attacks.Knowledge4(crun.globalModel(nil), members, nonMembers)
			row = append(row, f3(res.Accuracy()))
		}
		t.AddRow(row...)
	}
	return t, nil
}
