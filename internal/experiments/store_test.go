package experiments

import (
	"errors"
	"testing"

	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/fl/faults"
)

func TestStoreCachesCompletedCells(t *testing.T) {
	s := &Store{Dir: t.TempDir()}
	runs := 0
	r := s.Runner("probe", func(cfg Config) (*Table, error) {
		runs++
		tab := &Table{ID: "probe", Title: "probe", Header: []string{"seed"}}
		tab.AddRow("42")
		return tab, nil
	})
	cfg := Config{Scale: datasets.Quick, Seed: 42}

	first, err := r(cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := r(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if runs != 1 {
		t.Fatalf("runner executed %d times, want 1 (second call must hit the cell cache)", runs)
	}
	if second.Rows[0][0] != first.Rows[0][0] {
		t.Fatalf("cached cell %v differs from computed %v", second.Rows, first.Rows)
	}

	// A different seed is a different grid cell.
	if _, err := r(Config{Scale: datasets.Quick, Seed: 43}); err != nil {
		t.Fatal(err)
	}
	if runs != 2 {
		t.Fatalf("runner executed %d times, want 2 (new seed must miss)", runs)
	}
}

func TestStoreTreatsCorruptCellAsMiss(t *testing.T) {
	s := &Store{Dir: t.TempDir()}
	runs := 0
	r := s.Runner("probe", func(cfg Config) (*Table, error) {
		runs++
		return &Table{ID: "probe"}, nil
	})
	cfg := Config{Scale: datasets.Quick, Seed: 1}
	if _, err := r(cfg); err != nil {
		t.Fatal(err)
	}
	// Bit rot in the cached cell: the checksum catches it and the cell is
	// recomputed rather than served mangled.
	if err := faults.CorruptFile(s.cellPath("probe", cfg), 20); err != nil {
		t.Fatal(err)
	}
	if _, err := r(cfg); err != nil {
		t.Fatal(err)
	}
	if runs != 2 {
		t.Fatalf("runner executed %d times, want 2 (corrupt cell must read as a miss)", runs)
	}
}

func TestStoreNilDisablesCaching(t *testing.T) {
	var s *Store
	runs := 0
	r := s.Runner("probe", func(cfg Config) (*Table, error) {
		runs++
		return &Table{ID: "probe"}, nil
	})
	for i := 0; i < 2; i++ {
		if _, err := r(Quick()); err != nil {
			t.Fatal(err)
		}
	}
	if runs != 2 {
		t.Fatalf("nil store executed runner %d times, want 2 (no caching)", runs)
	}
	if _, ok := s.Load("probe", Quick()); ok {
		t.Fatal("nil store reported a cache hit")
	}
}

func TestStorePropagatesRunnerError(t *testing.T) {
	s := &Store{Dir: t.TempDir()}
	boom := errors.New("boom")
	r := s.Runner("probe", func(cfg Config) (*Table, error) { return nil, boom })
	if _, err := r(Quick()); !errors.Is(err, boom) {
		t.Fatalf("got %v, want the runner's error", err)
	}
	// A failed run must not leave a cell behind.
	if _, ok := s.Load("probe", Quick()); ok {
		t.Fatal("failed run cached a cell")
	}
}
