package experiments

import (
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/model"
)

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		ID:     "x",
		Title:  "demo",
		Header: []string{"a", "long-header"},
	}
	tbl.AddRow("1", "2")
	tbl.Notes = append(tbl.Notes, "a note")
	s := tbl.String()
	for _, want := range []string{"== x: demo ==", "long-header", "a note"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestRegistryMatchesDesignDoc(t *testing.T) {
	// DESIGN.md §4 promises these experiment ids.
	want := []string{"fig1", "table1", "table2", "fig4", "fig5", "fig6",
		"table3", "fig7", "fig8", "table4", "table5", "table6", "table7",
		"table8", "table9", "k3", "table10", "table11", "ablation", "theorem1"}
	if len(Registry) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(Registry), len(want))
	}
	for _, id := range want {
		if _, ok := Registry[id]; !ok {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("nope", Quick()); err == nil {
		t.Fatal("expected error for unknown experiment id")
	}
}

func TestNoniidClasses(t *testing.T) {
	if got := noniidClasses(100); got != 20 {
		t.Errorf("noniidClasses(100) = %d, want 20 (the paper's ratio)", got)
	}
	if got := noniidClasses(20); got != 4 {
		t.Errorf("noniidClasses(20) = %d, want 4", got)
	}
	if got := noniidClasses(5); got != 2 {
		t.Errorf("noniidClasses(5) = %d, want the floor of 2", got)
	}
}

func TestMatchClasses(t *testing.T) {
	d, err := datasets.Load(datasets.CIFAR100, datasets.Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	shards := datasets.PartitionByClass(d.Train, 2, 4, rand.New(rand.NewSource(1)))
	matched := matchClasses(d.Test, shards[0])
	owned := map[int]bool{}
	for _, y := range shards[0].Y {
		owned[y] = true
	}
	if matched.Len() == 0 {
		t.Fatal("matchClasses returned no samples")
	}
	for _, y := range matched.Y {
		if !owned[y] {
			t.Fatalf("matchClasses kept class %d not owned by the shard", y)
		}
	}
}

func TestArchForScales(t *testing.T) {
	if got := archFor(datasets.Purchase50, datasets.Quick); got != model.MLP {
		t.Errorf("Purchase-50 arch = %v, want MLP", got)
	}
	if got := archFor(datasets.CIFAR100, datasets.Quick); got != model.VGG {
		t.Errorf("quick image arch = %v, want VGG", got)
	}
	if got := archFor(datasets.CIFAR100, datasets.Full); got != model.ResNet {
		t.Errorf("full image arch = %v, want ResNet (as the paper uses)", got)
	}
}

func TestSampleShapeOf(t *testing.T) {
	d, err := datasets.Load(datasets.Purchase50, datasets.Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := sampleShapeOf(d.Train); len(got) != 1 || got[0] != d.Train.In.C {
		t.Errorf("tabular sample shape = %v", got)
	}
	img, err := datasets.Load(datasets.CHMNIST, datasets.Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := sampleShapeOf(img.Train); len(got) != 3 {
		t.Errorf("image sample shape = %v, want rank 3", got)
	}
}

func TestEqualize(t *testing.T) {
	d, err := datasets.Load(datasets.CHMNIST, datasets.Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, b := d.Train.Split(100)
	m, n := equalize(a, b)
	if m.Len() != n.Len() {
		t.Fatalf("equalize sizes differ: %d vs %d", m.Len(), n.Len())
	}
}

func TestLastRounds(t *testing.T) {
	got := lastRounds(10, 3)
	for _, r := range []int{7, 8, 9} {
		if !got[r] {
			t.Errorf("round %d should be kept", r)
		}
	}
	if len(got) != 3 {
		t.Errorf("kept %d rounds, want 3", len(got))
	}
	if edge := lastRounds(2, 5); len(edge) != 2 {
		t.Errorf("lastRounds(2,5) kept %d rounds, want 2", len(edge))
	}
}

func TestArtifactRoundTrip(t *testing.T) {
	a, err := TrainArtifact(datasets.CHMNIST, datasets.Quick, 1, 1, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.gob")
	if err := a.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if !back.CIP || back.Alpha != 0.5 || back.Preset != datasets.CHMNIST {
		t.Fatalf("artifact metadata lost: %+v", back)
	}
	if len(back.Params) != len(a.Params) {
		t.Fatalf("params length %d, want %d", len(back.Params), len(a.Params))
	}
	d, err := back.Data()
	if err != nil {
		t.Fatal(err)
	}
	// Owner view and attacker view must both reconstruct and run.
	owner, err := back.Net(true)
	if err != nil {
		t.Fatal(err)
	}
	attacker, err := back.Net(false)
	if err != nil {
		t.Fatal(err)
	}
	if acc := fl.Evaluate(owner, d.Test, 64); acc < 0 || acc > 1 {
		t.Fatalf("owner accuracy out of range: %v", acc)
	}
	if acc := fl.Evaluate(attacker, d.Test, 64); acc < 0 || acc > 1 {
		t.Fatalf("attacker accuracy out of range: %v", acc)
	}
}

func TestLegacyArtifact(t *testing.T) {
	a, err := TrainArtifact(datasets.Purchase50, datasets.Quick, 1, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.CIP {
		t.Fatal("alpha=0 should produce a legacy artifact")
	}
	if a.Arch != model.MLP {
		t.Fatalf("Purchase-50 artifact arch = %v, want MLP", a.Arch)
	}
	net, err := a.Net(false)
	if err != nil {
		t.Fatal(err)
	}
	d, err := a.Data()
	if err != nil {
		t.Fatal(err)
	}
	if acc := fl.Evaluate(net, d.Test, 64); acc <= 0 {
		t.Fatalf("legacy artifact accuracy = %v, want > 0 after training", acc)
	}
}

// TestTable11RunsQuickly exercises one real experiment end to end in the
// unit suite (the cheapest one with full coverage of both run paths).
func TestTable11RunsQuickly(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are skipped in -short mode")
	}
	tbl, err := Table11(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("Table XI has %d rows, want 3 architectures", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if !strings.HasPrefix(row[3], "+") {
			t.Fatalf("param overhead cell %q should be positive", row[3])
		}
	}
}
