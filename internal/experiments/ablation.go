package experiments

import (
	"math/rand"

	"github.com/cip-fl/cip/internal/attacks"
	"github.com/cip-fl/cip/internal/core"
	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/nn"
)

// Ablation isolates CIP's three design choices on the CH-MNIST preset
// (1 client, α = 0.9): the dual-channel architecture (vs single channel),
// Step I's perturbation optimization (vs a frozen random t), and Step II's
// λ_m original-loss maximization (vs λ_m = 0). Each row reports utility
// (test accuracy with the client's t) and privacy (Ob-MALT attack accuracy
// without t), so the table shows which component buys which property.
func Ablation(cfg Config) (*Table, error) {
	d, err := datasets.Load(datasets.CHMNIST, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	split := splitForAttack(d)
	// Mirror core.Client's layout: 90% trained (the member set), 10% held
	// out to self-calibrate the Eq. 4 loss target.
	trainSet, calib := split.TargetTrain.Split(split.TargetTrain.Len() * 9 / 10)
	members, nonMembers := equalize(trainSet, split.NonMembers)
	rounds := 25
	if cfg.Scale == datasets.Full {
		rounds = 50
	}
	arch := archFor(datasets.CHMNIST, cfg.Scale)
	const alpha = 0.9

	t := &Table{
		ID:     "ablation",
		Title:  "Ablation of CIP's design choices (CH-MNIST, 1 client, alpha=0.9)",
		Header: []string{"variant", "test acc (with t)", "attack acc (without t)"},
	}

	type variant struct {
		name          string
		singleChannel bool
		skipStepI     bool
		lambdaM       float64
		uncapped      bool
	}
	const lm = 0.3
	variants := []variant{
		{"full CIP", false, false, lm, false},
		{"single channel", true, false, lm, false},
		{"no Step I (frozen random t)", false, true, lm, false},
		{"lambda_m = 0 (no loss maximization)", false, false, 0, false},
		{"uncapped loss maximization", false, false, lm, true},
	}

	for _, v := range variants {
		var dual *core.DualChannelModel
		if v.singleChannel {
			dual = core.NewSingleChannelModel(rand.New(rand.NewSource(cfg.Seed+1)), arch,
				d.Train.In, d.Train.NumClasses)
		} else {
			dual = core.NewDualChannelModel(rand.New(rand.NewSource(cfg.Seed+1)), arch,
				d.Train.In, d.Train.NumClasses)
		}
		tc := cipTrainConfig(alpha, rounds, false)
		tc.LambdaM = v.lambdaM
		if v.uncapped {
			tc.OriginalLossCap = 1e9 // effectively disable the control loop
		}

		pert := core.NewPerturbation(core.BlendSeed(cfg.Seed, 0),
			sampleShapeOf(trainSet), 0, 1)
		m := core.NewCIPModel(dual, pert.T, alpha)
		opt := &nn.SGD{LR: tc.LR(0), Momentum: tc.Momentum}
		rng := rand.New(rand.NewSource(cfg.Seed + 20))
		for r := 0; r < rounds; r++ {
			opt.LR = tc.LR(r)
			if !v.skipStepI {
				core.StepIGeneratePerturbation(m, trainSet, tc, rng)
			}
			tcRound := tc
			if !v.uncapped && tc.LambdaM != 0 {
				// Self-calibrated non-member loss target, as core.Client does.
				tcRound.OriginalLossCap = fl.MeanLoss(m.WithT(m.ZeroT()), calib, 64)
			}
			core.StepIILearnModel(m, trainSet, tcRound, opt, rng)
		}

		testAcc := fl.Evaluate(m, d.Test, 64)
		attack := attacks.ObMALT(m.WithT(m.ZeroT()), members, nonMembers)
		t.AddRow(v.name, f3(testAcc), f3(attack.Accuracy()))
	}
	t.Notes = append(t.Notes,
		"the dual channel buys utility; the capped lambda_m maximization buys privacy where overfitting leaks (strongest on the CIFAR regimes, fig8) and its self-calibrated cap is what protects utility; Step I's benefit shows under non-iid heterogeneity (fig7, table3)")
	return t, nil
}

func sampleShapeOf(d *datasets.Dataset) []int {
	if d.In.IsImage() {
		return []int{d.In.C, d.In.H, d.In.W}
	}
	return []int{d.In.C}
}
