package experiments

import (
	"fmt"
	"math/rand"

	"github.com/cip-fl/cip/internal/attacks"
	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/model"
)

// rq3Presets returns the datasets swept in RQ3/RQ4 at the given scale.
func rq3Presets(s datasets.Scale) []datasets.Preset {
	if s == datasets.Full {
		return datasets.AllPresets()
	}
	return []datasets.Preset{datasets.CIFAR100, datasets.CHMNIST}
}

// archFor picks the backbone for a dataset: the paper uses ResNet-50 for
// the image datasets and an MLP for Purchase-50. At quick scale the
// cheaper VGG family stands in for the image backbone so the whole suite
// stays CI-sized; full scale uses the ResNet family as the paper does.
func archFor(p datasets.Preset, s datasets.Scale) model.Arch {
	if p == datasets.Purchase50 {
		return model.MLP
	}
	if s == datasets.Full {
		return model.ResNet
	}
	return model.VGG
}

// attackNames lists the five external attacks in the paper's order.
var attackNames = []string{"Ob-Label", "Ob-MALT", "Ob-NN", "Ob-BlindMI", "Pb-Bayes"}

// rq3Cell is one (dataset, α) evaluation: the trained CIP model attacked
// by all five external attacks.
type rq3Cell struct {
	results map[string]attacks.Result
	testAcc float64
}

func runRQ3Cell(cfg Config, p datasets.Preset, alpha float64) (*rq3Cell, error) {
	d, err := datasets.Load(p, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	split := splitForAttack(d)
	rounds := 22
	shadowEpochs := 22
	if cfg.Scale == datasets.Full {
		rounds, shadowEpochs = 50, 50
	}
	arch := archFor(p, cfg.Scale)

	crun, err := runCIP(split.TargetTrain, arch, 1, rounds, alpha, cfg.Seed,
		cipOpts{augment: d.Augment})
	if err != nil {
		return nil, err
	}
	probe := crun.globalModel(nil) // external attacker: zero-t queries
	members, nonMembers := equalize(crun.Clients[0].Data(), split.NonMembers)

	shadow, err := trainShadowFor(arch, split, shadowEpochs, cfg.Seed+100)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 7))

	cell := &rq3Cell{results: map[string]attacks.Result{}, testAcc: crun.evalCIP(d.Test)}
	cell.results["Ob-Label"] = attacks.ObLabel(probe, members, nonMembers)
	cell.results["Ob-MALT"] = attacks.ObMALT(probe, members, nonMembers)
	cell.results["Ob-NN"] = attacks.ObNN(probe, members, nonMembers, shadow, rng)
	cell.results["Ob-BlindMI"] = attacks.ObBlindMI(probe, members, nonMembers, rng)
	cell.results["Pb-Bayes"] = attacks.PbBayes(probe, members, nonMembers, shadow, rng)
	return cell, nil
}

// Fig8 reproduces Figure 8: the accuracy of the five external attacks
// against CIP as the blending parameter α increases, per dataset.
func Fig8(cfg Config) (*Table, error) {
	alphas := []float64{0.1, 0.5, 0.9}
	if cfg.Scale == datasets.Full {
		alphas = []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	}
	t := &Table{
		ID:     "fig8",
		Title:  "RQ3: external attack accuracy vs alpha, per dataset",
		Header: append([]string{"dataset", "alpha"}, attackNames...),
	}
	// Each (dataset, α) cell loads its own data, trains its own federation
	// and shadow model, and owns its attack RNG (cfg.Seed+7) — fully
	// independent, so the grid fans out over runIndexed (parallel.go).
	type gridCell struct {
		p datasets.Preset
		a float64
	}
	var cells []gridCell
	for _, p := range rq3Presets(cfg.Scale) {
		for _, a := range alphas {
			cells = append(cells, gridCell{p, a})
		}
	}
	results, err := runIndexed(len(cells), func(i int) (*rq3Cell, error) {
		return runRQ3Cell(cfg, cells[i].p, cells[i].a)
	})
	if err != nil {
		return nil, err
	}
	for i, cell := range results {
		row := []string{cells[i].p.String(), fmt.Sprintf("%.1f", cells[i].a)}
		for _, name := range attackNames {
			row = append(row, f3(cell.results[name].Accuracy()))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Table4 reproduces Table IV: precision, recall, F1 and accuracy of each
// attack against CIP at α = 0.7.
func Table4(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "table4",
		Title:  "RQ3: attack precision/recall/F1/accuracy against CIP (alpha=0.7)",
		Header: []string{"dataset", "attack", "precision", "recall", "f1", "accuracy"},
	}
	for _, p := range rq3Presets(cfg.Scale) {
		cell, err := runRQ3Cell(cfg, p, 0.7)
		if err != nil {
			return nil, err
		}
		for _, name := range attackNames {
			r := cell.results[name]
			t.AddRow(p.String(), name,
				f3(r.Counts.Precision()), f3(r.Counts.Recall()),
				f3(r.Counts.F1()), f3(r.Accuracy()))
		}
	}
	return t, nil
}

// Table5 reproduces Table V: CIP's test accuracy across α per dataset,
// with α = 0 standing for the undefended legacy model.
func Table5(cfg Config) (*Table, error) {
	alphas := []float64{0.1, 0.5, 0.9}
	if cfg.Scale == datasets.Full {
		alphas = []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	}
	header := []string{"dataset", "0 (no defense)"}
	for _, a := range alphas {
		header = append(header, fmt.Sprintf("%.1f", a))
	}
	t := &Table{
		ID:     "table5",
		Title:  "RQ3: CIP test accuracy vs alpha",
		Header: header,
	}
	rounds := 22
	if cfg.Scale == datasets.Full {
		rounds = 50
	}
	for _, p := range rq3Presets(cfg.Scale) {
		d, err := datasets.Load(p, cfg.Scale, cfg.Seed)
		if err != nil {
			return nil, err
		}
		arch := archFor(p, cfg.Scale)
		lrun, err := runLegacy(d.Train, arch, 1, rounds, cfg.Seed, legacyOpts{augment: d.Augment})
		if err != nil {
			return nil, err
		}
		row := []string{p.String(), f3(lrun.evalLegacy(d.Test))}
		for _, a := range alphas {
			crun, err := runCIP(d.Train, arch, 1, rounds, a, cfg.Seed,
				cipOpts{augment: d.Augment})
			if err != nil {
				return nil, err
			}
			row = append(row, f3(crun.evalCIP(d.Test)))
		}
		t.AddRow(row...)
	}
	return t, nil
}
