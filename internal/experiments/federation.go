package experiments

import (
	"fmt"
	"math/rand"

	"github.com/cip-fl/cip/internal/attacks"
	"github.com/cip-fl/cip/internal/core"
	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/model"
	"github.com/cip-fl/cip/internal/nn"
	"github.com/cip-fl/cip/internal/telemetry"
)

// hyper centralizes the training hyperparameters shared by all experiment
// federations at our scale.
type hyper struct {
	batch    int
	lr       float64
	momentum float64
}

func defaultHyper() hyper { return hyper{batch: 16, lr: 0.05, momentum: 0.9} }

// legacyRun is the result of a plain (or baseline-defended) federation.
type legacyRun struct {
	Global   []float64
	Recorder *fl.HistoryRecorder
	Shards   []*datasets.Dataset
	Build    func() nn.Layer // reconstructs the architecture
	Clients  []*fl.LegacyClient
}

// legacyOpts configures runLegacy beyond the common path.
type legacyOpts struct {
	classesPerClient int // 0 = iid partition
	stepFor          func(i int) fl.TrainStep
	localEpochs      int
	augment          bool
	telemetry        *telemetry.Registry // nil disables metrics
	keepRounds       map[int]bool        // rounds whose local params the recorder keeps
	alter            fl.AlterFunc
	observers        []fl.RoundObserver
	// build overrides the default classifier factory (HDP's frozen-feature
	// model plugs in here). It must be deterministic.
	build func() nn.Layer
	// ckpt, when non-nil, makes the run durable: clients are built
	// stateful (serializable RNGs, tracked data order) and the server
	// snapshots/resumes through it.
	ckpt *CheckpointSpec
	// policy, when non-nil, attaches a RoundPolicy (quorum, robust
	// aggregation, reputation-driven quarantine) to the server.
	policy *fl.RoundPolicy
}

// runLegacy trains a FedAvg federation of plain classifiers (optionally
// with a per-client defense TrainStep) and returns the final global model.
func runLegacy(train *datasets.Dataset, arch model.Arch, nClients, rounds int,
	seed int64, opts legacyOpts) (*legacyRun, error) {
	h := defaultHyper()
	rng := rand.New(rand.NewSource(seed))
	var shards []*datasets.Dataset
	if opts.classesPerClient > 0 {
		shards = datasets.PartitionByClass(train, nClients, opts.classesPerClient, rng)
	} else {
		shards = datasets.PartitionIID(train, nClients, rng)
	}
	build := opts.build
	if build == nil {
		build = func() nn.Layer {
			return model.NewClassifier(rand.New(rand.NewSource(seed+1)), arch, train.In, train.NumClasses)
		}
	}
	localEpochs := opts.localEpochs
	if localEpochs <= 0 {
		localEpochs = 1
	}
	clients := make([]fl.Client, nClients)
	legacy := make([]*fl.LegacyClient, nClients)
	var initial []float64
	for i := 0; i < nClients; i++ {
		net := build()
		if initial == nil {
			initial = nn.FlattenParams(net.Params())
		}
		var step fl.TrainStep
		if opts.stepFor != nil {
			step = opts.stepFor(i)
		}
		cfg := fl.ClientConfig{
			BatchSize:   h.batch,
			LocalEpochs: localEpochs,
			LR:          fl.DecaySchedule(h.lr, rounds),
			Momentum:    h.momentum,
			Augment:     opts.augment,
		}
		var lc *fl.LegacyClient
		if opts.ckpt != nil {
			lc = fl.NewStatefulLegacyClient(i, net, shards[i], cfg, step, seed+int64(10+i))
		} else {
			lc = fl.NewLegacyClient(i, net, shards[i], cfg, step,
				rand.New(rand.NewSource(seed+int64(10+i))))
		}
		clients[i] = lc
		legacy[i] = lc
	}
	rec := &fl.HistoryRecorder{KeepParams: len(opts.keepRounds) > 0, OnlyRounds: opts.keepRounds}
	srv := fl.NewServer(initial, clients...)
	srv.Metrics = fl.NewMetrics(opts.telemetry)
	srv.Observers = append(srv.Observers, rec)
	srv.Observers = append(srv.Observers, opts.observers...)
	srv.Alter = opts.alter
	srv.Policy = opts.policy
	if err := runServer(srv, rounds, opts.ckpt); err != nil {
		return nil, fmt.Errorf("experiments: legacy federation: %w", err)
	}
	return &legacyRun{Global: srv.Global(), Recorder: rec, Shards: shards,
		Build: build, Clients: legacy}, nil
}

// evalLegacy loads the run's global parameters and evaluates accuracy on d.
func (r *legacyRun) evalLegacy(d *datasets.Dataset) float64 {
	net := r.Build()
	if err := nn.SetFlatParams(net.Params(), r.Global); err != nil {
		panic(fmt.Sprintf("experiments: %v", err)) // run/arch mismatch is a bug
	}
	return fl.Evaluate(net, d, 64)
}

// globalNet returns a model loaded with the final global parameters.
func (r *legacyRun) globalNet() nn.Layer {
	net := r.Build()
	if err := nn.SetFlatParams(net.Params(), r.Global); err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return net
}

// cipRun is the result of a CIP federation.
type cipRun struct {
	Global    []float64
	Recorder  *fl.HistoryRecorder
	Shards    []*datasets.Dataset
	Clients   []*core.Client
	BuildDual func() *core.DualChannelModel
	Alpha     float64
}

// cipOpts configures runCIP.
type cipOpts struct {
	classesPerClient int
	keepRounds       map[int]bool
	alter            fl.AlterFunc
	observers        []fl.RoundObserver
	augment          bool
	telemetry        *telemetry.Registry // nil disables metrics
	// lambdaM overrides the Eq. 4 weight (0 keeps the regime default).
	lambdaM float64
	// ckpt, when non-nil, makes the run durable (see legacyOpts.ckpt).
	ckpt *CheckpointSpec
	// policy, when non-nil, attaches a RoundPolicy (see legacyOpts.policy).
	policy *fl.RoundPolicy
}

// cipTrainConfig is the CIP hyperparameter set the experiments use: the
// paper's α plus λ values rescaled to our loss/iteration scale (DESIGN.md
// §2; λ_m drives the Eq. 4 original-loss maximization).
func cipTrainConfig(alpha float64, rounds int, augment bool) core.TrainConfig {
	h := defaultHyper()
	return core.TrainConfig{
		Alpha:     alpha,
		LambdaT:   1e-6,
		LambdaM:   0.3,
		PerturbLR: 0.02,
		BatchSize: h.batch,
		LR:        fl.DecaySchedule(h.lr, rounds),
		Momentum:  h.momentum,
		Augment:   augment,
	}
}

// runCIP trains a CIP federation and returns the final global model plus
// per-client secret perturbations.
func runCIP(train *datasets.Dataset, arch model.Arch, nClients, rounds int,
	alpha float64, seed int64, opts cipOpts) (*cipRun, error) {
	rng := rand.New(rand.NewSource(seed))
	var shards []*datasets.Dataset
	if opts.classesPerClient > 0 {
		shards = datasets.PartitionByClass(train, nClients, opts.classesPerClient, rng)
	} else {
		shards = datasets.PartitionIID(train, nClients, rng)
	}
	buildDual := func() *core.DualChannelModel {
		return core.NewDualChannelModel(rand.New(rand.NewSource(seed+1)), arch,
			train.In, train.NumClasses)
	}
	tc := cipTrainConfig(alpha, rounds, opts.augment)
	tc.Metrics = core.NewMetrics(opts.telemetry)
	if opts.lambdaM > 0 {
		tc.LambdaM = opts.lambdaM
	}
	clients := make([]fl.Client, nClients)
	cips := make([]*core.Client, nClients)
	var initial []float64
	for i := 0; i < nClients; i++ {
		dual := buildDual()
		if initial == nil {
			initial = nn.FlattenParams(dual.Params())
		}
		var c *core.Client
		if opts.ckpt != nil {
			c = core.NewStatefulClient(i, dual, shards[i], tc, core.BlendSeed(seed, i),
				seed+int64(20+i))
		} else {
			c = core.NewClient(i, dual, shards[i], tc, core.BlendSeed(seed, i),
				rand.New(rand.NewSource(seed+int64(20+i))))
		}
		clients[i] = c
		cips[i] = c
	}
	rec := &fl.HistoryRecorder{KeepParams: len(opts.keepRounds) > 0, OnlyRounds: opts.keepRounds}
	srv := fl.NewServer(initial, clients...)
	srv.Metrics = fl.NewMetrics(opts.telemetry)
	srv.Observers = append(srv.Observers, rec)
	srv.Observers = append(srv.Observers, opts.observers...)
	srv.Alter = opts.alter
	srv.Policy = opts.policy
	if err := runServer(srv, rounds, opts.ckpt); err != nil {
		return nil, fmt.Errorf("experiments: CIP federation: %w", err)
	}
	return &cipRun{Global: srv.Global(), Recorder: rec, Shards: shards,
		Clients: cips, BuildDual: buildDual, Alpha: alpha}, nil
}

// globalModel returns a CIPModel over the final global parameters querying
// with the given perturbation.
func (r *cipRun) globalModel(t []float64) *core.CIPModel {
	dual := r.BuildDual()
	if err := nn.SetFlatParams(dual.Params(), r.Global); err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	ref := core.NewCIPModel(dual, r.Clients[0].Perturbation().T, r.Alpha)
	if t == nil {
		return ref.WithT(ref.ZeroT())
	}
	pt := ref.ZeroT()
	copy(pt.Data, t)
	return ref.WithT(pt)
}

// evalCIP evaluates the global model on d averaged over clients, each
// querying with its own secret t — how a deployed CIP federation serves
// inference.
func (r *cipRun) evalCIP(d *datasets.Dataset) float64 {
	dual := r.BuildDual()
	if err := nn.SetFlatParams(dual.Params(), r.Global); err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	var sum float64
	for _, c := range r.Clients {
		m := core.NewCIPModel(dual, c.Perturbation().T, r.Alpha)
		sum += fl.Evaluate(m, d, 64)
	}
	return sum / float64(len(r.Clients))
}

// attackSplit carves a loaded preset into the standard attack layout:
// the target's training set, a disjoint shadow training set, non-member
// and shadow-test sets.
type attackSplit struct {
	TargetTrain *datasets.Dataset
	ShadowTrain *datasets.Dataset
	NonMembers  *datasets.Dataset
	ShadowTest  *datasets.Dataset
}

func splitForAttack(d *datasets.Data) attackSplit {
	tt, st := d.Train.Split(d.Train.Len() / 2)
	nm, sx := d.Test.Split(d.Test.Len() / 2)
	return attackSplit{TargetTrain: tt, ShadowTrain: st, NonMembers: nm, ShadowTest: sx}
}

// matchClasses restricts d to samples whose class occurs in ref. Under a
// non-iid partition the victim's members span only its own classes;
// without this restriction a membership attack could "win" by telling
// classes apart instead of membership, inflating every attack's accuracy.
func matchClasses(d, ref *datasets.Dataset) *datasets.Dataset {
	owned := map[int]bool{}
	for _, y := range ref.Y {
		owned[y] = true
	}
	var idx []int
	for i, y := range d.Y {
		if owned[y] {
			idx = append(idx, i)
		}
	}
	return d.Subset(idx)
}

// equalize truncates members/nonMembers to equal length.
func equalize(members, nonMembers *datasets.Dataset) (*datasets.Dataset, *datasets.Dataset) {
	n := members.Len()
	if nonMembers.Len() < n {
		n = nonMembers.Len()
	}
	mi := make([]int, n)
	ni := make([]int, n)
	for i := 0; i < n; i++ {
		mi[i], ni[i] = i, i
	}
	return members.Subset(mi), nonMembers.Subset(ni)
}

// trainShadowFor builds the shadow bundle matching an experiment's
// architecture, used by Ob-NN and Pb-Bayes.
func trainShadowFor(arch model.Arch, split attackSplit, epochs int, seed int64) (attacks.ShadowBundle, error) {
	build := func() nn.Layer {
		return model.NewClassifier(rand.New(rand.NewSource(seed)), arch,
			split.ShadowTrain.In, split.ShadowTrain.NumClasses)
	}
	return attacks.TrainShadow(build, split.ShadowTrain, split.ShadowTest,
		epochs, defaultHyper().lr, rand.New(rand.NewSource(seed+1)))
}
