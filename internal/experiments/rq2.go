package experiments

import (
	"fmt"
	"math/rand"

	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/metrics"
	"github.com/cip-fl/cip/internal/model"
	"github.com/cip-fl/cip/internal/nn"
)

// Table3 reproduces Table III: accuracy of CIP, no-defense FL, and local
// (non-collaborative) training as the data distribution moves from
// non-iid to iid (classes per client sweeps up to the full class count).
func Table3(cfg Config) (*Table, error) {
	d, err := datasets.Load(datasets.CIFAR100, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	const k = 5
	rounds := 20
	if cfg.Scale == datasets.Full {
		rounds = 50
	}
	total := d.Train.NumClasses
	sweep := []int{total / 5, 2 * total / 5, 3 * total / 5, 4 * total / 5, total}

	cipRow := []string{"CIP (ours)"}
	nodefRow := []string{"No Defense"}
	localRow := []string{"Local Training"}
	header := []string{"defense \\ classes/client"}

	for _, ncc := range sweep {
		header = append(header, fmt.Sprintf("%d", ncc))

		crun, err := runCIP(d.Train, model.VGG, k, rounds, 0.3, cfg.Seed,
			cipOpts{classesPerClient: ncc})
		if err != nil {
			return nil, err
		}
		cipRow = append(cipRow, f3(crun.evalCIP(d.Test)))

		lrun, err := runLegacy(d.Train, model.VGG, k, rounds, cfg.Seed,
			legacyOpts{classesPerClient: ncc})
		if err != nil {
			return nil, err
		}
		nodefRow = append(nodefRow, f3(lrun.evalLegacy(d.Test)))

		acc, err := localTrainingAcc(d, k, ncc, rounds, cfg.Seed)
		if err != nil {
			return nil, err
		}
		localRow = append(localRow, f3(acc))
	}

	t := &Table{
		ID:     "table3",
		Title:  "RQ2: accuracy across data distributions (non-iid -> iid), 5 clients",
		Header: header,
	}
	t.AddRow(cipRow...)
	t.AddRow(nodefRow...)
	t.AddRow(localRow...)
	t.Notes = append(t.Notes,
		"local training evaluates each client's model only on test samples of classes the client holds (paper's footnote)")
	return t, nil
}

// localTrainingAcc trains each client alone (no aggregation) and averages
// accuracy over clients, each evaluated on the test samples of the classes
// it owns — the paper's local-training baseline.
func localTrainingAcc(d *datasets.Data, k, ncc, epochs int, seed int64) (float64, error) {
	rng := rand.New(rand.NewSource(seed))
	shards := datasets.PartitionByClass(d.Train, k, ncc, rng)
	var sum float64
	for i, shard := range shards {
		net := model.NewClassifier(rand.New(rand.NewSource(seed+1)), model.VGG,
			d.Train.In, d.Train.NumClasses)
		opt := &nn.SGD{LR: defaultHyper().lr, Momentum: defaultHyper().momentum}
		crng := rand.New(rand.NewSource(seed + int64(30+i)))
		for e := 0; e < epochs; e++ {
			if _, err := fl.TrainEpochs(net, opt, nil, shard,
				fl.ClientConfig{BatchSize: defaultHyper().batch}, crng); err != nil {
				return 0, err
			}
		}
		// Restrict evaluation to the classes this client actually has.
		owned := map[int]bool{}
		for _, y := range shard.Y {
			owned[y] = true
		}
		var idx []int
		for j, y := range d.Test.Y {
			if owned[y] {
				idx = append(idx, j)
			}
		}
		sum += fl.Evaluate(net, d.Test.Subset(idx), 64)
	}
	return sum / float64(k), nil
}

// Fig7 reproduces Figure 7: the earth-mover distance between clients'
// training-loss trajectories under non-iid vs iid partitions, with and
// without CIP. CIP's personalized perturbations shift heterogeneous client
// distributions toward each other, shrinking the EMD.
func Fig7(cfg Config) (*Table, error) {
	d, err := datasets.Load(datasets.CIFAR100, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	k := 4
	rounds := 20
	if cfg.Scale == datasets.Full {
		k = 10
		rounds = 50
	}
	total := d.Train.NumClasses

	t := &Table{
		ID:     "fig7",
		Title:  "EMD of per-client training loss vs data heterogeneity (alpha=0.3)",
		Header: []string{"distribution", "EMD (no defense)", "EMD (CIP)"},
	}
	for _, ncc := range []int{noniidClasses(total), total} {
		label := fmt.Sprintf("%d classes/client", ncc)
		if ncc == total {
			label += " (iid)"
		} else {
			label += " (non-iid)"
		}

		lrun, err := runLegacy(d.Train, model.VGG, k, rounds, cfg.Seed,
			legacyOpts{classesPerClient: ncc})
		if err != nil {
			return nil, err
		}
		crun, err := runCIP(d.Train, model.VGG, k, rounds, 0.3, cfg.Seed,
			cipOpts{classesPerClient: ncc})
		if err != nil {
			return nil, err
		}
		t.AddRow(label, f3(meanLossEMD(lrun.Recorder, k)), f3(meanLossEMD(crun.Recorder, k)))
	}
	return t, nil
}

func meanLossEMD(rec *fl.HistoryRecorder, k int) float64 {
	series := make([][]float64, k)
	for i := 0; i < k; i++ {
		series[i] = rec.ClientLossSeries(i)
	}
	return metrics.MeanPairwiseEMD(series)
}
