package experiments

import (
	"fmt"
	"math/rand"

	"github.com/cip-fl/cip/internal/attacks"
	"github.com/cip-fl/cip/internal/core"
	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/defenses"
	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/metrics"
	"github.com/cip-fl/cip/internal/model"
	"github.com/cip-fl/cip/internal/nn"
)

// Fig1 reproduces Figure 1: the per-sample loss distributions of members
// vs non-members, before CIP (legacy model) and after (CIP model queried
// without the secret t). The overlap coefficient quantifies how alike the
// two densities are — the paper's visual claim in numbers.
func Fig1(cfg Config) (*Table, error) {
	d, err := datasets.Load(datasets.CIFAR100, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	split := splitForAttack(d)
	members, nonMembers := equalize(split.TargetTrain, split.NonMembers)
	rounds := 25
	if cfg.Scale == datasets.Full {
		rounds = 50
	}

	arch := archFor(datasets.CIFAR100, cfg.Scale)
	leg, err := runLegacy(split.TargetTrain, arch, 1, rounds, cfg.Seed, legacyOpts{})
	if err != nil {
		return nil, err
	}
	legNet := leg.globalNet()
	memBefore := fl.Losses(legNet, members, 64)
	nonBefore := fl.Losses(legNet, nonMembers, 64)

	cip, err := runCIP(split.TargetTrain, arch, 1, rounds, 0.9, cfg.Seed, cipOpts{})
	if err != nil {
		return nil, err
	}
	probe := cip.globalModel(nil) // zero-t query, the attacker's view
	cipMembers, cipNon := equalize(cip.Clients[0].Data(), split.NonMembers)
	memAfter := fl.Losses(probe, cipMembers, 64)
	nonAfter := fl.Losses(probe, cipNon, 64)

	hi := maxOf(append(append([]float64{}, memBefore...), nonBefore...))
	hiA := maxOf(append(append([]float64{}, memAfter...), nonAfter...))
	const bins = 10
	hb := metrics.Histogram(memBefore, 0, hi, bins)
	nb := metrics.Histogram(nonBefore, 0, hi, bins)
	ha := metrics.Histogram(memAfter, 0, hiA, bins)
	na := metrics.Histogram(nonAfter, 0, hiA, bins)

	t := &Table{
		ID:     "fig1",
		Title:  "Loss distributions of members vs non-members, before/after CIP",
		Header: []string{"bin", "member(orig)", "nonmem(orig)", "member(CIP)", "nonmem(CIP)"},
	}
	for i := 0; i < bins; i++ {
		t.AddRow(fmt.Sprintf("%d", i), f3(hb[i]), f3(nb[i]), f3(ha[i]), f3(na[i]))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("overlap coefficient before CIP = %.3f, after CIP = %.3f (1 = identical distributions)",
			metrics.OverlapCoefficient(hb, nb), metrics.OverlapCoefficient(ha, na)))
	return t, nil
}

func maxOf(xs []float64) float64 {
	m := 1e-9
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Table1 reproduces Table I: the internal-adversary setup grid — legacy
// model train/test accuracy across client counts and architectures, with
// CIP's hyperparameter columns.
func Table1(cfg Config) (*Table, error) {
	d, err := datasets.Load(datasets.CIFAR100, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	clientCounts := []int{2, 5}
	rounds := map[int]int{2: 16, 5: 24}
	if cfg.Scale == datasets.Full {
		clientCounts = []int{2, 5, 10, 20, 50}
		rounds = map[int]int{2: 40, 5: 60, 10: 80, 20: 100, 50: 120}
	}

	t := &Table{
		ID:    "table1",
		Title: "[Internal setup] legacy model parameters and CIP parameters",
		Header: []string{"model", "#clients", "#train iter", "train acc", "test acc",
			"attack iters", "lr(per.)", "lambda_m", "lambda_t"},
	}
	for _, arch := range []model.Arch{model.ResNet, model.DenseNet, model.VGG} {
		for _, k := range clientCounts {
			r := rounds[k]
			run, err := runLegacy(d.Train, arch, k, r, cfg.Seed, legacyOpts{classesPerClient: noniidClasses(d.Train.NumClasses)})
			if err != nil {
				return nil, err
			}
			trainAcc := run.evalLegacy(d.Train)
			testAcc := run.evalLegacy(d.Test)
			t.AddRow(arch.String(), fmt.Sprintf("%d", k), fmt.Sprintf("%d", r),
				f3(trainAcc), f3(testAcc),
				fmt.Sprintf("%d,%d,%d", r-3, r-2, r-1), "1e-2", "2e-2", "1e-6")
		}
	}
	t.Notes = append(t.Notes, "non-iid partition ("+fmt.Sprint(noniidClasses(d.Train.NumClasses))+" classes/client), paper's Table I grid at reduced scale")
	return t, nil
}

// noniidClasses maps the paper's "20 of 100 classes per client" ratio onto
// whatever class count the current scale uses.
func noniidClasses(numClasses int) int {
	c := numClasses / 5
	if c < 2 {
		c = 2
	}
	return c
}

// Table2 reproduces Table II: the external-adversary setup — per-dataset
// legacy model accuracies with one client (the paper's worst case) and the
// CIP hyperparameter columns.
func Table2(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "table2",
		Title: "[External setup] legacy model parameters and CIP parameters",
		Header: []string{"dataset", "model", "#train iter", "train acc", "test acc",
			"lr(train)", "lr(per.)", "lambda_m", "lambda_t"},
	}
	for _, p := range datasets.AllPresets() {
		d, err := datasets.Load(p, cfg.Scale, cfg.Seed)
		if err != nil {
			return nil, err
		}
		arch := archFor(p, cfg.Scale)
		rounds := 25
		if cfg.Scale == datasets.Full {
			rounds = 50
		}
		run, err := runLegacy(d.Train, arch, 1, rounds, cfg.Seed, legacyOpts{augment: d.Augment})
		if err != nil {
			return nil, err
		}
		t.AddRow(d.Name, arch.String(), fmt.Sprintf("%d", rounds),
			f3(run.evalLegacy(d.Train)), f3(run.evalLegacy(d.Test)),
			"8e-2", "2e-2", "2e-2", "1e-6")
	}
	return t, nil
}

// passiveAccOn runs the internal passive attack against client 0 of a
// recorded federation and returns the attack accuracy.
func passiveAccOn(kept []fl.RoundRecord, buildNet func() nn.Layer,
	victimShard, nonMembers *datasets.Dataset, seed int64) (float64, error) {
	m, n := equalize(victimShard, nonMembers)
	res, err := attacks.InternalPassive{BuildNet: buildNet}.Run(kept, m, n,
		rand.New(rand.NewSource(seed)))
	if err != nil {
		return 0, err
	}
	return res.Accuracy(), nil
}

// lastRounds marks the final n rounds for recorder retention — the
// paper's "attack on several latest iterations".
func lastRounds(total, n int) map[int]bool {
	out := make(map[int]bool, n)
	for i := total - n; i < total; i++ {
		if i >= 0 {
			out[i] = true
		}
	}
	return out
}

// Fig4 reproduces Figure 4: test accuracy and internal attack accuracy
// versus the number of clients, comparing CIP (α=0.5 per the paper's
// Fig. 4), DP, HDP, and no defense under a non-iid partition.
func Fig4(cfg Config) (*Table, error) {
	d, err := datasets.Load(datasets.CIFAR100, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	clientCounts := []int{2, 5}
	rounds := 20
	if cfg.Scale == datasets.Full {
		clientCounts = []int{2, 5, 10, 20}
		rounds = 50
	}
	ncc := noniidClasses(d.Train.NumClasses)
	arch := archFor(datasets.CIFAR100, cfg.Scale)
	const eps = 128.0 // the paper's headline DP comparison budget

	t := &Table{
		ID:    "fig4",
		Title: "RQ1-internal: accuracy and attack accuracy vs #clients (non-iid)",
		Header: []string{"defense", "#clients", "test acc",
			"passive attack", "active attack"},
	}

	// Every (clientCount, defense) cell derives all randomness from cfg.Seed
	// and owns its federations, so the grid fans out over runIndexed and the
	// rows are appended serially in the original loop order (parallel.go).
	type cell struct{ k, def int }
	var cells []cell
	for _, k := range clientCounts {
		for def := 0; def < 5; def++ {
			cells = append(cells, cell{k, def})
		}
	}
	rows, err := runIndexed(len(cells), func(i int) ([]string, error) {
		return fig4Cell(cfg, d, arch, cells[i].k, rounds, ncc, eps, cells[i].def)
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t, nil
}

// fig4Cell computes one (clientCount, defense) cell of Figure 4 and returns
// its formatted table row. def indexes the figure's defense order:
// 0 NoDefense, 1 DP, 2 HDP, 3 CIP(α=0.5), 4 CIP(α=0.9) — α = 0.5 matches
// the paper's Fig. 4 label; α = 0.9 shows the strong-defense setting the
// paper deploys (RQ3).
func fig4Cell(cfg Config, d *datasets.Data, arch model.Arch, k, rounds, ncc int,
	eps float64, def int) ([]string, error) {
	keep := lastRounds(rounds, 3)
	steps := rounds * (d.Train.Len() / k / defaultHyper().batch)
	sigma := defenses.NoiseMultiplierFor(eps, 1e-5, steps)

	if def >= 3 {
		alpha := 0.5
		if def == 4 {
			alpha = 0.9
		}
		crun, err := runCIP(d.Train, arch, k, rounds, alpha, cfg.Seed,
			cipOpts{classesPerClient: ncc, keepRounds: keep})
		if err != nil {
			return nil, err
		}
		buildZero := func() nn.Layer { return crun.globalModel(nil) }
		pass, err := passiveAccOn(crun.Recorder.KeptRounds(), buildZero,
			crun.Clients[0].Data(), matchClasses(d.Test, crun.Clients[0].Data()), cfg.Seed)
		if err != nil {
			return nil, err
		}
		act, err := cipActiveAttack(d, arch, k, rounds, alpha, cfg.Seed, ncc, false)
		if err != nil {
			return nil, err
		}
		return []string{fmt.Sprintf("CIP(alpha=%.1f)", alpha), fmt.Sprintf("%d", k),
			f3(crun.evalCIP(d.Test)), f3(pass), f3(act)}, nil
	}

	dpStep := func(i int) fl.TrainStep {
		return defenses.NewDPStep(1.0, sigma, 8, rand.New(rand.NewSource(cfg.Seed+int64(i))))
	}
	var name string
	var opts legacyOpts
	switch def {
	case 0:
		name = "NoDefense"
	case 1:
		name = fmt.Sprintf("DP(eps=%g)", eps)
		opts.stepFor = dpStep
	case 2:
		name = fmt.Sprintf("HDP(eps=%g)", eps)
		opts.build = func() nn.Layer {
			return defenses.NewHDPClassifier(rand.New(rand.NewSource(cfg.Seed+1)),
				cfg.Seed+2, d.Train.In, 128, d.Train.NumClasses)
		}
		opts.stepFor = dpStep
	}
	opts.classesPerClient = ncc
	opts.keepRounds = keep
	run, err := runLegacy(d.Train, arch, k, rounds, cfg.Seed, opts)
	if err != nil {
		return nil, err
	}
	pass, err := passiveAccOn(run.Recorder.KeptRounds(), run.Build,
		run.Shards[0], matchClasses(d.Test, run.Shards[0]), cfg.Seed)
	if err != nil {
		return nil, err
	}
	act, err := legacyActiveAttack(d, arch, k, rounds, cfg.Seed, opts, run)
	if err != nil {
		return nil, err
	}
	return []string{name, fmt.Sprintf("%d", k),
		f3(run.evalLegacy(d.Test)), f3(pass), f3(act)}, nil
}

// legacyActiveAttack reruns a legacy federation with the Nasr active
// (gradient-ascent) malicious server wired in and returns attack accuracy.
func legacyActiveAttack(d *datasets.Data, arch model.Arch, k, rounds int,
	seed int64, base legacyOpts, ref *legacyRun) (float64, error) {
	nTargets := ref.Shards[0].Len() / 2
	if nTargets > 30 {
		nTargets = 30
	}
	nonMembers := matchClasses(d.Test, ref.Shards[0])
	if nonMembers.Len() < nTargets {
		nTargets = nonMembers.Len()
	}
	targets := datasets.Concat(
		ref.Shards[0].Subset(seqInts(nTargets)),
		nonMembers.Subset(seqInts(nTargets)))
	attacker := &attacks.ActiveAttacker{
		BuildNet:    ref.Build,
		Targets:     targets,
		NumMembers:  nTargets,
		VictimID:    0,
		StartRound:  rounds - 5,
		AscentLR:    0.05,
		AscentSteps: 2,
	}
	opts := base
	opts.alter = attacker.Alter
	opts.observers = append(opts.observers, attacker)
	opts.keepRounds = nil
	if _, err := runLegacy(d.Train, arch, k, rounds, seed, opts); err != nil {
		return 0, err
	}
	res, err := attacker.Result()
	if err != nil {
		return 0, err
	}
	return res.Accuracy(), nil
}

// cipActiveAttack reruns a CIP federation under the active attacker, which
// queries with the zero perturbation (it does not know t). With
// descend=true it becomes the adaptive Optimization-2 attack (Table VII):
// the server lowers the targets' loss and flags samples whose loss ends
// high — the signature CIP's Step II leaves on members.
func cipActiveAttack(d *datasets.Data, arch model.Arch, k, rounds int,
	alpha float64, seed int64, ncc int, descend bool) (float64, error) {
	// Pre-run once to learn shard layout (deterministic by seed).
	pre, err := runCIP(d.Train, arch, k, 1, alpha, seed, cipOpts{classesPerClient: ncc})
	if err != nil {
		return 0, err
	}
	victimData := pre.Clients[0].Data()
	nTargets := victimData.Len() / 2
	if nTargets > 30 {
		nTargets = 30
	}
	nonMembers := matchClasses(d.Test, victimData)
	if nonMembers.Len() < nTargets {
		nTargets = nonMembers.Len()
	}
	targets := datasets.Concat(
		victimData.Subset(seqInts(nTargets)),
		nonMembers.Subset(seqInts(nTargets)))
	buildZero := func() nn.Layer {
		dual := pre.BuildDual()
		ref := core.NewCIPModel(dual, pre.Clients[0].Perturbation().T, alpha)
		return ref.WithT(ref.ZeroT())
	}
	attacker := &attacks.ActiveAttacker{
		BuildNet:    buildZero,
		Targets:     targets,
		NumMembers:  nTargets,
		VictimID:    0,
		StartRound:  rounds - 5,
		AscentLR:    0.05,
		AscentSteps: 2,
		Descend:     descend,
	}
	if _, err := runCIP(d.Train, arch, k, rounds, alpha, seed, cipOpts{
		classesPerClient: ncc, alter: attacker.Alter,
		observers: []fl.RoundObserver{attacker},
	}); err != nil {
		return 0, err
	}
	res, err := attacker.Result()
	if err != nil {
		return 0, err
	}
	return res.Accuracy(), nil
}

func seqInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Fig5 reproduces Figure 5: test and passive-attack accuracy for CIP vs DP
// across the three backbone families and across DP's ε budget (2 clients).
func Fig5(cfg Config) (*Table, error) {
	d, err := datasets.Load(datasets.CIFAR100, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	rounds := 16
	epsList := []float64{1, 16, 256}
	if cfg.Scale == datasets.Full {
		rounds = 40
		epsList = []float64{1, 4, 16, 64, 256}
	}
	const k = 2
	ncc := noniidClasses(d.Train.NumClasses)
	keep := lastRounds(rounds, 3)

	t := &Table{
		ID:     "fig5",
		Title:  "RQ1-internal: CIP vs DP across architectures and epsilon (2 clients)",
		Header: []string{"model", "defense", "test acc", "passive attack"},
	}
	// Arch × defense cells are independent (all randomness comes from
	// cfg.Seed); fan out and append rows in the original order.
	type cell struct {
		arch model.Arch
		eps  float64 // DP budget; unused for the CIP cell
		cip  bool
	}
	var cells []cell
	for _, arch := range []model.Arch{model.VGG, model.DenseNet, model.ResNet} {
		cells = append(cells, cell{arch: arch, cip: true})
		for _, eps := range epsList {
			cells = append(cells, cell{arch: arch, eps: eps})
		}
	}
	rows, err := runIndexed(len(cells), func(ci int) ([]string, error) {
		c := cells[ci]
		if c.cip {
			crun, err := runCIP(d.Train, c.arch, k, rounds, 0.5, cfg.Seed,
				cipOpts{classesPerClient: ncc, keepRounds: keep})
			if err != nil {
				return nil, err
			}
			pass, err := passiveAccOn(crun.Recorder.KeptRounds(),
				func() nn.Layer { return crun.globalModel(nil) },
				crun.Clients[0].Data(), matchClasses(d.Test, crun.Clients[0].Data()), cfg.Seed)
			if err != nil {
				return nil, err
			}
			return []string{c.arch.String(), "CIP(alpha=0.5)",
				f3(crun.evalCIP(d.Test)), f3(pass)}, nil
		}
		steps := rounds * (d.Train.Len() / k / defaultHyper().batch)
		sigma := defenses.NoiseMultiplierFor(c.eps, 1e-5, steps)
		run, err := runLegacy(d.Train, c.arch, k, rounds, cfg.Seed, legacyOpts{
			classesPerClient: ncc,
			keepRounds:       keep,
			stepFor: func(i int) fl.TrainStep {
				return defenses.NewDPStep(1.0, sigma, 8, rand.New(rand.NewSource(cfg.Seed+int64(i))))
			},
		})
		if err != nil {
			return nil, err
		}
		pass, err := passiveAccOn(run.Recorder.KeptRounds(), run.Build,
			run.Shards[0], matchClasses(d.Test, run.Shards[0]), cfg.Seed)
		if err != nil {
			return nil, err
		}
		return []string{c.arch.String(), fmt.Sprintf("DP(eps=%g)", c.eps),
			f3(run.evalLegacy(d.Test)), f3(pass)}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t, nil
}

// Fig6 reproduces Figure 6: the external-adversary comparison on CH-MNIST
// (1 client) — test accuracy and Pb-Bayes attack accuracy for no defense,
// CIP(α=0.9), and the DP/HDP/AR/MM/RL baselines across privacy budgets.
func Fig6(cfg Config) (*Table, error) {
	d, err := datasets.Load(datasets.CHMNIST, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	split := splitForAttack(d)
	members, nonMembers := equalize(split.TargetTrain, split.NonMembers)
	rounds := 25
	shadowEpochs := 25
	epsList := []float64{1, 8, 32}
	lamList := []float64{0.3, 1, 2}
	muList := []float64{0.5, 2.5, 10}
	omList := []float64{0.5, 2.5, 10}
	if cfg.Scale == datasets.Full {
		rounds, shadowEpochs = 50, 50
		epsList = []float64{1, 2, 8, 16, 32}
		lamList = []float64{0.3, 0.7, 1, 1.5, 2}
		muList = []float64{0.5, 1, 2.5, 5, 10}
		omList = []float64{0.5, 1, 2.5, 5, 10}
	}
	arch := archFor(datasets.CHMNIST, cfg.Scale)
	shadow, err := trainShadowFor(arch, split, shadowEpochs, cfg.Seed+100)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig6",
		Title:  "RQ1-external: CIP vs defenses on CH-MNIST (1 client, Pb-Bayes attack)",
		Header: []string{"defense", "budget", "test acc", "attack acc"},
	}

	// Two phases (parallel.go): training cells are independent and fan out;
	// the Pb-Bayes attacks share one sequential RNG (cfg.Seed+5) and the
	// shadow bundle, so they run serially afterwards in the original row
	// order — the rows are bit-identical to the fully serial schedule
	// because training never touches the attack RNG.
	type fig6Run struct {
		name, budget string
		testAcc      float64
		net          nn.Layer
		m, nm        *datasets.Dataset
	}
	legacyCell := func(name, budget string, opts legacyOpts) func() (fig6Run, error) {
		return func() (fig6Run, error) {
			run, err := runLegacy(split.TargetTrain, arch, 1, rounds, cfg.Seed, opts)
			if err != nil {
				return fig6Run{}, err
			}
			return fig6Run{name, budget, run.evalLegacy(d.Test),
				run.globalNet(), members, nonMembers}, nil
		}
	}

	specs := []func() (fig6Run, error){
		legacyCell("NoDefense", "-", legacyOpts{}),
		func() (fig6Run, error) {
			crun, err := runCIP(split.TargetTrain, arch, 1, rounds, 0.9, cfg.Seed, cipOpts{})
			if err != nil {
				return fig6Run{}, err
			}
			probe := crun.globalModel(nil)
			cm, cn := equalize(crun.Clients[0].Data(), split.NonMembers)
			return fig6Run{"CIP(alpha=0.9)", "-", crun.evalCIP(d.Test), probe, cm, cn}, nil
		},
	}
	steps := rounds * (split.TargetTrain.Len() / defaultHyper().batch)
	for _, eps := range epsList {
		sigma := defenses.NoiseMultiplierFor(eps, 1e-5, steps)
		dpStep := func(i int) fl.TrainStep {
			return defenses.NewDPStep(1.0, sigma, 8, rand.New(rand.NewSource(cfg.Seed+int64(i))))
		}
		specs = append(specs,
			legacyCell("DP", fmt.Sprintf("eps=%g", eps), legacyOpts{stepFor: dpStep}),
			legacyCell("HDP", fmt.Sprintf("eps=%g", eps), legacyOpts{
				build: func() nn.Layer {
					return defenses.NewHDPClassifier(rand.New(rand.NewSource(cfg.Seed+1)),
						cfg.Seed+2, d.Train.In, 128, d.Train.NumClasses)
				},
				stepFor: dpStep,
			}))
	}
	for _, lam := range lamList {
		specs = append(specs, legacyCell("AR", fmt.Sprintf("lambda=%g", lam), legacyOpts{
			stepFor: func(i int) fl.TrainStep {
				return defenses.NewAdvRegStep(lam, split.ShadowTest.Clone(), d.Train.NumClasses,
					rand.New(rand.NewSource(cfg.Seed+int64(i))))
			}}))
	}
	for _, mu := range muList {
		specs = append(specs, legacyCell("MM", fmt.Sprintf("mu=%g", mu), legacyOpts{
			stepFor: func(i int) fl.TrainStep {
				return defenses.NewMixupMMDStep(mu, 0.4, split.ShadowTest.Clone(), d.Train.NumClasses,
					rand.New(rand.NewSource(cfg.Seed+int64(i))))
			}}))
	}
	for _, om := range omList {
		specs = append(specs, legacyCell("RL", fmt.Sprintf("omega=%g", om), legacyOpts{
			stepFor: func(i int) fl.TrainStep {
				return defenses.NewRelaxLossStep(om)
			}}))
	}

	runs, err := runIndexed(len(specs), func(i int) (fig6Run, error) { return specs[i]() })
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 5))
	for _, r := range runs {
		res := attacks.PbBayes(r.net, r.m, r.nm, shadow, rng)
		t.AddRow(r.name, r.budget, f3(r.testAcc), f3(res.Accuracy()))
	}
	return t, nil
}
