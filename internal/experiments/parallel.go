package experiments

import (
	"runtime"
	"sync"
)

// Parallel experiment sweeps. The figure grids (fig4/fig5/fig6/fig8) and
// Repeat's seed loop are maps over independent cells: every cell derives all
// of its randomness from cfg.Seed, loads or subsets its own datasets, and
// builds its own federation, so cells can run concurrently. Determinism is
// preserved the same way the fl engine preserves it (DESIGN.md §9): cells
// land in an index-addressed slice and rows are appended serially in the
// original loop order, so the emitted table is bit-identical for every
// worker count. Anything that does share sequential state — Fig6's
// attack-side RNG, Repeat's mean±std merge — stays in a serial phase.

// sweepWorkers resolves the worker count for an n-cell sweep: GOMAXPROCS
// clamped to n. Experiment cells nest further parallelism (client training,
// GEMM), so oversubscription is bounded per layer rather than multiplied.
func sweepWorkers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// runIndexed evaluates fn(0..n-1) on a bounded worker pool and returns the
// results addressed by index. On failure the lowest-index error wins, so
// the reported error does not depend on worker interleaving. The serial
// path (one worker) short-circuits on the first error, matching the
// original loop structure of the sweeps.
func runIndexed[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if sweepWorkers(n) < 2 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < sweepWorkers(n); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i], errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
