package experiments

import (
	"fmt"
	"strconv"

	"github.com/cip-fl/cip/internal/metrics"
)

// Repeat runs an experiment n times with consecutive seeds and aggregates
// every numeric cell to "mean±std". Label cells must agree across runs.
// Single-seed tables are point estimates; Repeat quantifies how much of a
// reported gap is run-to-run noise.
func Repeat(id string, cfg Config, n int) (*Table, error) {
	r, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q", id)
	}
	return RepeatRunner(id, r, cfg, n)
}

// RepeatRunner is Repeat for an explicit runner (used by tests and custom
// experiments).
func RepeatRunner(id string, r Runner, cfg Config, n int) (*Table, error) {
	if n < 1 {
		return nil, fmt.Errorf("experiments: Repeat needs n ≥ 1, got %d", n)
	}
	// Seeds are independent runs; fan them out and merge index-addressed
	// (see parallel.go), so the aggregate is identical to the serial loop.
	tables, err := runIndexed(n, func(i int) (*Table, error) {
		c := cfg
		c.Seed = cfg.Seed + int64(i)
		t, err := r(c)
		if err != nil {
			return nil, fmt.Errorf("experiments: repeat %d of %s: %w", i, id, err)
		}
		return t, nil
	})
	if err != nil {
		return nil, err
	}

	base := tables[0]
	out := &Table{
		ID:     base.ID,
		Title:  fmt.Sprintf("%s (mean±std over %d seeds)", base.Title, n),
		Header: base.Header,
		Notes:  base.Notes,
	}
	for ri := range base.Rows {
		row := make([]string, len(base.Rows[ri]))
		for ci := range base.Rows[ri] {
			vals := make([]float64, 0, n)
			numeric := true
			for _, t := range tables {
				if ri >= len(t.Rows) || ci >= len(t.Rows[ri]) {
					return nil, fmt.Errorf("experiments: repeat of %s produced ragged tables", id)
				}
				v, err := strconv.ParseFloat(t.Rows[ri][ci], 64)
				if err != nil {
					numeric = false
					break
				}
				vals = append(vals, v)
			}
			if !numeric {
				// Label cell: runs must agree.
				cell := base.Rows[ri][ci]
				for _, t := range tables {
					if t.Rows[ri][ci] != cell {
						return nil, fmt.Errorf(
							"experiments: repeat of %s: label cell (%d,%d) differs across seeds: %q vs %q",
							id, ri, ci, cell, t.Rows[ri][ci])
					}
				}
				row[ci] = cell
				continue
			}
			row[ci] = fmt.Sprintf("%.3f±%.3f", metrics.Mean(vals), metrics.Std(vals))
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}
