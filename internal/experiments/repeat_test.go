package experiments

import (
	"fmt"
	"strings"
	"testing"
)

func stubRunner(vals map[int64]float64) Runner {
	return func(cfg Config) (*Table, error) {
		t := &Table{ID: "stub", Title: "stub", Header: []string{"name", "value"}}
		t.AddRow("metric", fmt.Sprintf("%.3f", vals[cfg.Seed]))
		return t, nil
	}
}

func TestRepeatRunnerAggregates(t *testing.T) {
	r := stubRunner(map[int64]float64{1: 0.4, 2: 0.6, 3: 0.5})
	out, err := RepeatRunner("stub", r, Config{Seed: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	cell := out.Rows[0][1]
	if !strings.HasPrefix(cell, "0.500±") {
		t.Fatalf("aggregated cell = %q, want mean 0.500", cell)
	}
	if out.Rows[0][0] != "metric" {
		t.Fatalf("label cell lost: %q", out.Rows[0][0])
	}
	if !strings.Contains(out.Title, "3 seeds") {
		t.Fatalf("title should mention seeds: %q", out.Title)
	}
}

func TestRepeatRunnerLabelMismatch(t *testing.T) {
	r := func(cfg Config) (*Table, error) {
		t := &Table{ID: "stub", Header: []string{"name", "value"}}
		t.AddRow(fmt.Sprintf("label-%d", cfg.Seed), "not-a-number")
		return t, nil
	}
	if _, err := RepeatRunner("stub", r, Config{Seed: 1}, 2); err == nil {
		t.Fatal("expected error when label cells differ across seeds")
	}
}

func TestRepeatRunnerValidatesN(t *testing.T) {
	if _, err := RepeatRunner("stub", stubRunner(nil), Config{}, 0); err == nil {
		t.Fatal("expected error for n=0")
	}
}

func TestRepeatUnknownID(t *testing.T) {
	if _, err := Repeat("nope", Quick(), 2); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestRepeatRunnerPropagatesErrors(t *testing.T) {
	r := func(cfg Config) (*Table, error) {
		if cfg.Seed == 2 {
			return nil, fmt.Errorf("boom")
		}
		tb := &Table{Header: []string{"v"}}
		tb.AddRow("1")
		return tb, nil
	}
	if _, err := RepeatRunner("stub", r, Config{Seed: 1}, 3); err == nil {
		t.Fatal("expected propagated error from a failing seed")
	}
}
