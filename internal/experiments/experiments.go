// Package experiments regenerates every table and figure of the paper's
// evaluation section. Each experiment is a function from a Config to a
// rendered Table whose rows/series mirror the paper's artifact; the
// mapping from experiment id to paper artifact is DESIGN.md §4, and the
// paper-vs-measured comparison lives in EXPERIMENTS.md.
//
// All experiments run at two scales: Quick (seconds to a couple of
// minutes, used by CI and `go test -bench`) and Full (longer sweeps closer
// to the paper's grid). Trends and orderings, not absolute accuracies, are
// the reproduction target (see DESIGN.md §2 for the substitution
// rationale).
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"github.com/cip-fl/cip/internal/datasets"
)

// Config selects the scale and base seed of an experiment run.
type Config struct {
	Scale datasets.Scale
	Seed  int64
}

// Quick returns the CI-scale config used by tests and benchmarks.
func Quick() Config { return Config{Scale: datasets.Quick, Seed: 1} }

// Table is a rendered experiment artifact: the rows the paper's table or
// figure reports.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Runner is an experiment entry point.
type Runner func(Config) (*Table, error)

// Registry maps experiment ids (DESIGN.md §4) to their runners.
var Registry = map[string]Runner{
	"fig1":     Fig1,
	"table1":   Table1,
	"table2":   Table2,
	"fig4":     Fig4,
	"fig5":     Fig5,
	"fig6":     Fig6,
	"table3":   Table3,
	"fig7":     Fig7,
	"fig8":     Fig8,
	"table4":   Table4,
	"table5":   Table5,
	"table6":   Table6,
	"table7":   Table7,
	"table8":   Table8,
	"table9":   Table9,
	"k3":       Knowledge3Exp,
	"table10":  Table10,
	"table11":  Table11,
	"ablation": Ablation,
	"theorem1": Theorem1,
}

// IDs returns the registered experiment ids in sorted order.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for id := range Registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by id.
func Run(id string, cfg Config) (*Table, error) {
	r, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %s)",
			id, strings.Join(IDs(), ", "))
	}
	return r(cfg)
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
