package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
)

func TestRunIndexedOrdersResults(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	out, err := runIndexed(37, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestRunIndexedLowestErrorWins(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	e3, e7 := errors.New("cell 3"), errors.New("cell 7")
	_, err := runIndexed(16, func(i int) (int, error) {
		switch i {
		case 3:
			return 0, e3
		case 7:
			return 0, e7
		}
		return i, nil
	})
	if !errors.Is(err, e3) {
		t.Fatalf("got error %v, want the lowest-index error %v", err, e3)
	}
}

// TestRepeatRunnerParallelMatchesSerial pins the sweep determinism
// contract: the aggregated table is byte-identical whether the seeds run on
// one worker or many.
func TestRepeatRunnerParallelMatchesSerial(t *testing.T) {
	runner := func(cfg Config) (*Table, error) {
		tab := &Table{ID: "par", Title: "par", Header: []string{"name", "value", "value2"}}
		tab.AddRow("metric", fmt.Sprintf("%.3f", float64(cfg.Seed)*0.125),
			fmt.Sprintf("%.3f", float64(cfg.Seed*cfg.Seed)*0.01))
		return tab, nil
	}
	render := func(workers int) string {
		prev := runtime.GOMAXPROCS(workers)
		defer runtime.GOMAXPROCS(prev)
		out, err := RepeatRunner("par", runner, Config{Seed: 3}, 6)
		if err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	serial, parallel := render(1), render(4)
	if serial != parallel {
		t.Fatalf("parallel repeat diverges from serial:\n%s\nvs\n%s", serial, parallel)
	}
}
