package experiments

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"

	"github.com/cip-fl/cip/internal/core"
	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/fl/checkpoint"
	"github.com/cip-fl/cip/internal/model"
	"github.com/cip-fl/cip/internal/nn"
	"github.com/cip-fl/cip/internal/telemetry"
)

// Artifact is a trained model saved to disk by ciptrain and consumed by
// cipattack: the final global parameter vector plus everything needed to
// reconstruct the architecture and (for CIP) the evaluation perturbation.
type Artifact struct {
	Preset datasets.Preset
	Scale  datasets.Scale
	Seed   int64
	Arch   model.Arch

	// CIP is true for dual-channel CIP models.
	CIP   bool
	Alpha float64
	// T is client 0's perturbation (saved so the artifact's owner can
	// evaluate utility; an attacker tool must NOT use it).
	T []float64

	Params []float64
}

// maxArtifactBytes bounds how much of an artifact file LoadArtifact will
// read before giving up; see flcli's matching bound for rationale.
const maxArtifactBytes = 1 << 30

// Save writes the artifact atomically in the checksummed checkpoint
// container format, so a crash mid-save can never leave a silently
// truncated artifact behind.
func (a *Artifact) Save(path string) error {
	if err := checkpoint.WriteFile(path, checkpoint.KindArtifact, a); err != nil {
		return fmt.Errorf("experiments: saving artifact: %w", err)
	}
	return nil
}

// LoadArtifact reads an artifact written by Save. Containerized files are
// validated (magic, kind, length, checksum) before decoding; files from
// before the container format fall back to a raw, byte-bounded gob decode.
func LoadArtifact(path string) (*Artifact, error) {
	var a Artifact
	err := checkpoint.ReadFile(path, checkpoint.KindArtifact, maxArtifactBytes, &a)
	if errors.Is(err, checkpoint.ErrNotCheckpoint) {
		return loadArtifactLegacy(path)
	}
	if err != nil {
		return nil, fmt.Errorf("experiments: loading artifact: %w", err)
	}
	return &a, nil
}

func loadArtifactLegacy(path string) (*Artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("experiments: loading artifact: %w", err)
	}
	defer f.Close()
	var a Artifact
	if err := decodeBoundedGob(f, &a); err != nil {
		return nil, fmt.Errorf("experiments: decoding artifact %s: %w", path, err)
	}
	return &a, nil
}

// decodeBoundedGob gob-decodes one value reading at most maxArtifactBytes,
// converting decoder panics into errors so legacy (unchecksummed) files
// degrade cleanly.
func decodeBoundedGob(r io.Reader, v any) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("decode panicked: %v", p)
		}
	}()
	return gob.NewDecoder(io.LimitReader(r, maxArtifactBytes)).Decode(v)
}

// Data reloads the dataset the artifact was trained on (generation is
// deterministic in the seed).
func (a *Artifact) Data() (*datasets.Data, error) {
	return datasets.Load(a.Preset, a.Scale, a.Seed)
}

// Net reconstructs the model. For CIP artifacts, withT selects whether the
// saved perturbation is applied (owner's view) or the zero perturbation
// (attacker's view).
func (a *Artifact) Net(withT bool) (nn.Layer, error) {
	d, err := a.Data()
	if err != nil {
		return nil, err
	}
	if !a.CIP {
		net := model.NewClassifier(rand.New(rand.NewSource(a.Seed+1)), a.Arch,
			d.Train.In, d.Train.NumClasses)
		if err := nn.SetFlatParams(net.Params(), a.Params); err != nil {
			return nil, err
		}
		return net, nil
	}
	dual := core.NewDualChannelModel(rand.New(rand.NewSource(a.Seed+1)), a.Arch,
		d.Train.In, d.Train.NumClasses)
	if err := nn.SetFlatParams(dual.Params(), a.Params); err != nil {
		return nil, err
	}
	shape := []int{d.Train.In.C}
	if d.Train.In.IsImage() {
		shape = []int{d.Train.In.C, d.Train.In.H, d.Train.In.W}
	}
	pt := nn.NewParam("t", shape...).Value
	if withT {
		if len(a.T) != pt.Size() {
			return nil, fmt.Errorf("experiments: artifact perturbation has %d values, want %d",
				len(a.T), pt.Size())
		}
		copy(pt.Data, a.T)
	}
	return core.NewCIPModel(dual, pt, a.Alpha), nil
}

// TrainArtifact runs a federation on the preset and returns the artifact.
// alpha > 0 selects CIP; alpha == 0 trains the undefended legacy model.
func TrainArtifact(p datasets.Preset, scale datasets.Scale, seed int64,
	clients, rounds int, alpha float64) (*Artifact, error) {
	return TrainArtifactObserved(p, scale, seed, clients, rounds, alpha, nil)
}

// TrainArtifactObserved is TrainArtifact with live telemetry: when reg is
// non-nil the federation records round metrics and the CIP trainer
// records Step I/II losses and epoch timings into it (cmd/ciptrain serves
// these under -metrics-addr).
func TrainArtifactObserved(p datasets.Preset, scale datasets.Scale, seed int64,
	clients, rounds int, alpha float64, reg *telemetry.Registry) (*Artifact, error) {
	d, err := datasets.Load(p, scale, seed)
	if err != nil {
		return nil, err
	}
	arch := archFor(p, scale)
	a := &Artifact{Preset: p, Scale: scale, Seed: seed, Arch: arch, Alpha: alpha}
	if alpha > 0 {
		run, err := runCIP(d.Train, arch, clients, rounds, alpha, seed,
			cipOpts{augment: d.Augment, telemetry: reg})
		if err != nil {
			return nil, err
		}
		a.CIP = true
		a.Params = run.Global
		a.T = append([]float64(nil), run.Clients[0].Perturbation().T.Data...)
		return a, nil
	}
	run, err := runLegacy(d.Train, arch, clients, rounds, seed,
		legacyOpts{augment: d.Augment, telemetry: reg})
	if err != nil {
		return nil, err
	}
	a.Params = run.Global
	return a, nil
}
