package experiments

import (
	"errors"
	"fmt"
	"os"

	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/fl/checkpoint"
	"github.com/cip-fl/cip/internal/telemetry"
)

// CheckpointSpec makes an in-process experiment federation durable: the
// run snapshots to Path on the Every cadence, stops cleanly on Stop, and —
// when Resume is set — continues from the last valid snapshot instead of
// round 0. A resumed run is bit-identical to one that was never
// interrupted.
type CheckpointSpec struct {
	// Path is the snapshot location (the previous generation is kept at
	// Path+".prev").
	Path string
	// Every is the snapshot cadence in rounds (≤ 1 means every round).
	Every int
	// Resume restores from Path when a valid snapshot exists there; with
	// no snapshot on disk the run starts fresh.
	Resume bool
	// Stop ends the run at the next round boundary with fl.ErrStopped
	// after writing a final snapshot.
	Stop <-chan struct{}
	// Metrics, when non-nil, receives checkpoint write/restore/corruption
	// telemetry.
	Metrics *checkpoint.Metrics
	// AfterRound is the crash-injection hook (internal/fl/faults.CrashAt);
	// production runs leave it nil.
	AfterRound func(round int) error
	// WriteHook, when non-nil, may corrupt snapshot bytes before they hit
	// the disk (torn-write fault injection); production runs leave it nil.
	WriteHook func([]byte) []byte
}

func (s *CheckpointSpec) manager() *checkpoint.Manager {
	return &checkpoint.Manager{Path: s.Path, Metrics: s.Metrics, WriteHook: s.WriteHook}
}

// runServer runs srv to the absolute round count — durably when spec is
// non-nil, plain otherwise.
func runServer(srv *fl.Server, rounds int, spec *CheckpointSpec) error {
	if spec == nil {
		return srv.Run(rounds)
	}
	mgr := spec.manager()
	if spec.Resume {
		snap, err := mgr.Load()
		switch {
		case err == nil:
			if err := srv.RestoreState(&snap.State); err != nil {
				return fmt.Errorf("experiments: restoring snapshot %s: %w", spec.Path, err)
			}
		case errors.Is(err, os.ErrNotExist):
			// Nothing durable yet: start fresh.
		default:
			return fmt.Errorf("experiments: loading snapshot %s: %w", spec.Path, err)
		}
	}
	return srv.RunWithOptions(rounds, fl.RunOptions{
		CheckpointEvery: spec.Every,
		Save: func(st *fl.ServerState) error {
			return mgr.Save(&checkpoint.Snapshot{State: *st})
		},
		Stop:       spec.Stop,
		AfterRound: spec.AfterRound,
	})
}

// TrainArtifactDurable is TrainArtifactObserved with durable
// checkpointing: the federation snapshots through spec, and an interrupted
// run (fl.ErrStopped, process death) can be rerun with spec.Resume to
// continue where the last snapshot left off, producing a bit-identical
// artifact. A nil spec degrades to TrainArtifactObserved. policy, when
// non-nil, attaches quorum / robust-aggregation / quarantine semantics to
// the federation (cmd/ciptrain builds it from -robust-agg and friends);
// the reputation tracker's state rides the snapshot, so a resumed run
// keeps its quarantine decisions.
func TrainArtifactDurable(p datasets.Preset, scale datasets.Scale, seed int64,
	clients, rounds int, alpha float64, reg *telemetry.Registry,
	spec *CheckpointSpec, policy *fl.RoundPolicy) (*Artifact, error) {
	d, err := datasets.Load(p, scale, seed)
	if err != nil {
		return nil, err
	}
	arch := archFor(p, scale)
	a := &Artifact{Preset: p, Scale: scale, Seed: seed, Arch: arch, Alpha: alpha}
	if alpha > 0 {
		run, err := runCIP(d.Train, arch, clients, rounds, alpha, seed,
			cipOpts{augment: d.Augment, telemetry: reg, ckpt: spec, policy: policy})
		if err != nil {
			return nil, err
		}
		a.CIP = true
		a.Params = run.Global
		a.T = append([]float64(nil), run.Clients[0].Perturbation().T.Data...)
		return a, nil
	}
	run, err := runLegacy(d.Train, arch, clients, rounds, seed,
		legacyOpts{augment: d.Augment, telemetry: reg, ckpt: spec, policy: policy})
	if err != nil {
		return nil, err
	}
	a.Params = run.Global
	return a, nil
}
