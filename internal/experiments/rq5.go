package experiments

import (
	"fmt"
	"math/rand"

	"github.com/cip-fl/cip/internal/core"
	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/model"
	"github.com/cip-fl/cip/internal/nn"
)

// Table11 reproduces Table XI: CIP's overhead — the parameter count of the
// dual-channel model vs the legacy model per architecture (the shared
// backbone keeps the increase to the widened head only), and the number of
// training rounds each takes to fit its training data.
func Table11(cfg Config) (*Table, error) {
	d, err := datasets.Load(datasets.CIFAR100, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "table11",
		Title: "RQ5: parameter and convergence overhead of CIP vs no defense",
		Header: []string{"model", "params (no defense)", "params (CIP)", "param overhead",
			"rounds-to-fit (no defense)", "rounds-to-fit (CIP)"},
	}
	maxRounds := 40
	if cfg.Scale == datasets.Full {
		maxRounds = 80
	}
	const fitAcc = 0.8

	var totalOverhead float64
	for _, arch := range []model.Arch{model.ResNet, model.DenseNet, model.VGG} {
		legacy := model.NewClassifier(rand.New(rand.NewSource(cfg.Seed)), arch,
			d.Train.In, d.Train.NumClasses)
		dual := core.NewDualChannelModel(rand.New(rand.NewSource(cfg.Seed)), arch,
			d.Train.In, d.Train.NumClasses)
		lp, cp := legacy.NumParams(), dual.NumParams()
		overhead := float64(cp-lp) / float64(lp)
		totalOverhead += overhead

		lRounds, err := roundsToFitLegacy(d, arch, fitAcc, maxRounds, cfg.Seed)
		if err != nil {
			return nil, err
		}
		cRounds, err := roundsToFitCIP(d, arch, fitAcc, maxRounds, cfg.Seed)
		if err != nil {
			return nil, err
		}
		t.AddRow(arch.String(), fmt.Sprintf("%d", lp), fmt.Sprintf("%d", cp),
			fmt.Sprintf("+%.2f%%", overhead*100),
			fmt.Sprintf("%d", lRounds), fmt.Sprintf("%d", cRounds))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("average parameter overhead = +%.2f%% (paper: +0.87%%); rounds-to-fit = first round reaching train accuracy %.1f (capped at %d)",
			totalOverhead/3*100, fitAcc, maxRounds))
	return t, nil
}

// roundsToFitLegacy trains a single-client legacy model round by round and
// returns the first round whose training accuracy reaches target.
func roundsToFitLegacy(d *datasets.Data, arch model.Arch, target float64,
	maxRounds int, seed int64) (int, error) {
	run, err := runLegacy(d.Train, arch, 1, 1, seed, legacyOpts{})
	if err != nil {
		return 0, err
	}
	// Continue training the same client round by round.
	client := run.Clients[0]
	global := run.Global
	for r := 1; r <= maxRounds; r++ {
		net := run.Build()
		if err := nn.SetFlatParams(net.Params(), global); err != nil {
			return 0, err
		}
		if acc := evalOn(net, d.Train); acc >= target {
			return r, nil
		}
		u, err := client.TrainLocal(r, global)
		if err != nil {
			return 0, err
		}
		global = u.Params
	}
	return maxRounds, nil
}

// roundsToFitCIP does the same for a CIP client (accuracy measured with
// the client's own t, as a deployed client would).
func roundsToFitCIP(d *datasets.Data, arch model.Arch, target float64,
	maxRounds int, seed int64) (int, error) {
	run, err := runCIP(d.Train, arch, 1, 1, 0.5, seed, cipOpts{})
	if err != nil {
		return 0, err
	}
	client := run.Clients[0]
	global := run.Global
	for r := 1; r <= maxRounds; r++ {
		dual := run.BuildDual()
		if err := nn.SetFlatParams(dual.Params(), global); err != nil {
			return 0, err
		}
		m := core.NewCIPModel(dual, client.Perturbation().T, run.Alpha)
		if acc := evalOn(m, d.Train); acc >= target {
			return r, nil
		}
		u, err := client.TrainLocal(r, global)
		if err != nil {
			return 0, err
		}
		global = u.Params
	}
	return maxRounds, nil
}

func evalOn(net nn.Layer, d *datasets.Dataset) float64 {
	x, y := d.Batch(0, d.Len())
	logits, _ := net.Forward(x, false)
	return nn.Accuracy(logits, y)
}
