package experiments

import (
	"fmt"
	"math/rand"

	"github.com/cip-fl/cip/internal/core"
	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/nn"
)

// Theorem1 empirically validates the paper's §III-C analysis on a trained
// CIP model: for a batch of guessed perturbations t′, it measures how
// often the theorem's premise l(θ, z_t) ≤ l(θ, z_t′) holds on members,
// the mean loss gap, and the resulting advantage ratio
// ε = exp(−(l(z_t′) − l(z_t))/T) — which the theorem bounds by 1. A mean
// ε far below 1 is the quantitative form of "guessing a perturbation
// gains the adversary nothing".
func Theorem1(cfg Config) (*Table, error) {
	d, err := datasets.Load(datasets.CIFAR100, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	split := splitForAttack(d)
	rounds := 25
	guesses := 5
	if cfg.Scale == datasets.Full {
		rounds, guesses = 50, 20
	}
	crun, err := runCIP(split.TargetTrain, archFor(datasets.CIFAR100, cfg.Scale),
		1, rounds, 0.7, cfg.Seed, cipOpts{})
	if err != nil {
		return nil, err
	}
	client := crun.Clients[0]
	members := client.Data()
	m := crun.globalModel(nil).WithT(client.Perturbation().T)

	x, y := members.Batch(0, members.Len())
	logitsTrue, _ := m.Forward(x, false)
	lossTrue := nn.SoftmaxCrossEntropy(logitsTrue, y).PerSample

	const temperature = 1.0
	rng := rand.New(rand.NewSource(cfg.Seed + 41))
	t := &Table{
		ID:    "theorem1",
		Title: "Empirical check of Theorem 1 on a trained CIP model (alpha=0.7, T=1)",
		Header: []string{"guessed t' seed", "premise holds", "mean loss gap",
			"mean eps", "max eps"},
	}
	for g := 0; g < guesses; g++ {
		guess := core.NewPerturbation(rng.Int63(), client.Perturbation().T.Shape, 0, 1)
		logitsG, _ := m.WithT(guess.T).Forward(x, false)
		lossGuess := nn.SoftmaxCrossEntropy(logitsG, y).PerSample

		holds := 0
		var gapSum, epsSum, epsMax float64
		for i := range lossTrue {
			gap := lossGuess[i] - lossTrue[i]
			if gap >= 0 {
				holds++
			}
			gapSum += gap
			eps := core.AdvantageRatio(lossTrue[i], lossGuess[i], temperature)
			epsSum += eps
			if eps > epsMax {
				epsMax = eps
			}
		}
		n := float64(len(lossTrue))
		t.AddRow(fmt.Sprintf("#%d", g+1),
			fmt.Sprintf("%.0f%%", 100*float64(holds)/n),
			f3(gapSum/n), f3(epsSum/n), f3(epsMax))
	}
	t.Notes = append(t.Notes,
		"Theorem 1: when the premise holds, eps = exp(-(l(t')-l(t))/T) <= 1; mean eps << 1 quantifies how little a guessed perturbation helps")
	return t, nil
}
