// Package cip is a from-scratch Go reproduction of "Fortifying Federated
// Learning against Membership Inference Attacks via Client-level Input
// Perturbation" (DSN 2023).
//
// The implementation lives under internal/: the numeric stack (tensor,
// nn, model), the federated-learning substrate (fl, fl/transport), the
// CIP defense itself (core), the attack suite (attacks), the baseline
// defenses (defenses), and the experiment harness that regenerates every
// table and figure of the paper (experiments). Executables are under cmd/
// and runnable walkthroughs under examples/. See README.md, DESIGN.md and
// EXPERIMENTS.md.
package cip
