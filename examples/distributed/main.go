// Distributed: the same CIP federation as the quickstart, but run over
// the wire — a coordinator listening on loopback TCP and two CIP clients
// connecting as separate participants, exchanging gob-encoded parameter
// vectors (internal/fl/transport). The clients' secret perturbations never
// appear in any message; only model parameters cross the network, exactly
// the property CIP's threat model relies on.
//
// The coordinator here runs in fault-tolerant mode: per-round client
// deadlines, an accept window bounding the roster wait, and quorum-based
// partial aggregation — a client that stalls or drops is removed from the
// round instead of sinking the federation. Clients dial with exponential
// backoff + jitter, so they may be launched before the coordinator is up.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"github.com/cip-fl/cip/internal/core"
	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/fl/transport"
	"github.com/cip-fl/cip/internal/model"
	"github.com/cip-fl/cip/internal/nn"
)

const (
	numClients = 2
	rounds     = 15
	seed       = 33
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	d, err := datasets.Load(datasets.CHMNIST, datasets.Quick, seed)
	if err != nil {
		return err
	}
	shards := datasets.PartitionIID(d.Train, numClients, rand.New(rand.NewSource(seed)))

	cfg := core.TrainConfig{
		Alpha: 0.9, LambdaT: 1e-6, LambdaM: 0.3, PerturbLR: 0.02,
		BatchSize: 16, LR: fl.DecaySchedule(0.04, rounds), Momentum: 0.9,
	}
	clients := make([]*core.Client, numClients)
	var initial []float64
	for i := 0; i < numClients; i++ {
		dual := core.NewDualChannelModel(rand.New(rand.NewSource(seed+1)), model.VGG,
			d.Train.In, d.Train.NumClasses)
		if initial == nil {
			initial = nn.FlattenParams(dual.Params())
		}
		clients[i] = core.NewClient(i, dual, shards[i], cfg, core.BlendSeed(seed, i),
			rand.New(rand.NewSource(seed+int64(10+i))))
	}

	coord := &transport.Coordinator{
		NumClients:   numClients,
		Rounds:       rounds,
		Initial:      initial,
		MinQuorum:    1,
		RoundTimeout: 2 * time.Minute,
		AcceptWindow: 30 * time.Second,
	}
	addrCh := make(chan string, 1)
	var (
		global []float64
		srvErr error
		wg     sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		global, srvErr = coord.ListenAndRun("127.0.0.1:0", func(a string) {
			fmt.Printf("coordinator listening on %s\n", a)
			addrCh <- a
		})
	}()
	addr := <-addrCh

	var cwg sync.WaitGroup
	for i, c := range clients {
		cwg.Add(1)
		go func(i int, c *core.Client) {
			defer cwg.Done()
			retry := transport.RetryConfig{
				MaxAttempts: 5,
				BaseDelay:   100 * time.Millisecond,
				Rng:         rand.New(rand.NewSource(seed + int64(1000+i))),
			}
			if err := transport.RunClientRetry(addr, c, retry); err != nil {
				log.Printf("client %d: %v", i, err)
				return
			}
			fmt.Printf("client %d finished %d rounds\n", i, rounds)
		}(i, c)
	}
	cwg.Wait()
	wg.Wait()
	if srvErr != nil {
		return srvErr
	}

	// Each client evaluates the final global model with its own secret t.
	evalDual := core.NewDualChannelModel(rand.New(rand.NewSource(seed+1)), model.VGG,
		d.Train.In, d.Train.NumClasses)
	if err := nn.SetFlatParams(evalDual.Params(), global); err != nil {
		return err
	}
	for i, c := range clients {
		m := core.NewCIPModel(evalDual, c.Perturbation().T, cfg.Alpha)
		fmt.Printf("client %d: global-model test accuracy with its t = %.3f\n",
			i, fl.Evaluate(m, d.Test, 64))
	}
	fmt.Println("only parameter vectors crossed the wire; every t stayed client-local")
	return nil
}
