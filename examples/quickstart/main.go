// Quickstart: train a CIP-defended federated model on the synthetic
// CIFAR-100 preset, then mount the loss-threshold membership inference
// attack twice — once as an outsider without the secret perturbation and
// once with it — to see the defense at work.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/cip-fl/cip/internal/attacks"
	"github.com/cip-fl/cip/internal/core"
	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/model"
	"github.com/cip-fl/cip/internal/nn"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Data: the synthetic CIFAR-100 stand-in (overfit-prone regime).
	d, err := datasets.Load(datasets.CIFAR100, datasets.Quick, 42)
	if err != nil {
		return err
	}
	// A small training set per client makes memorization — the raw
	// material of membership inference — fast and visible.
	train, _ := d.Train.Split(160)
	fmt.Printf("dataset: %s — %d train / %d test samples, %d classes\n",
		d.Name, train.Len(), d.Test.Len(), d.Train.NumClasses)

	// 2. A CIP client: dual-channel model + secret perturbation t.
	cfg := core.TrainConfig{
		Alpha:     0.9,  // strong blending, the paper's deployment setting
		LambdaT:   1e-6, // Eq. 3's L1 weight on t
		LambdaM:   0.3,  // Eq. 4's original-loss maximization weight
		PerturbLR: 0.02,
		BatchSize: 16,
		LR:        fl.DecaySchedule(0.04, 25),
		Momentum:  0.9,
	}
	dual := core.NewDualChannelModel(rand.New(rand.NewSource(1)), model.VGG,
		d.Train.In, d.Train.NumClasses)
	client := core.NewClient(0, dual, train, cfg, core.BlendSeed(42, 0),
		rand.New(rand.NewSource(2)))

	// 3. Federate (a single client here — the paper's external worst case).
	server := fl.NewServer(nn.FlattenParams(dual.Params()), client)
	const rounds = 25
	fmt.Printf("training CIP for %d rounds...\n", rounds)
	if err := server.Run(rounds); err != nil {
		return err
	}

	// 4. Evaluate utility: the client queries with its own t.
	owner := client.Model()
	fmt.Printf("train accuracy (with t): %.3f\n", fl.Evaluate(owner, train, 64))
	fmt.Printf("test accuracy (with t):  %.3f\n", fl.Evaluate(owner, d.Test, 64))

	// 5. Attack it. The attacker does not know t, so it queries with the
	// zero perturbation; for reference we also attack with the stolen t.
	members, nonMembers := datasets.MembershipSplit(train, d.Test, 150,
		rand.New(rand.NewSource(3)))
	outsider := attacks.ObMALT(owner.WithT(owner.ZeroT()), members, nonMembers)
	insider := attacks.ObMALT(owner, members, nonMembers)
	fmt.Printf("MI attack without t: accuracy %.3f (≈0.5 is random guessing)\n", outsider.Accuracy())
	fmt.Printf("MI attack with stolen t: accuracy %.3f (what CIP prevents)\n", insider.Accuracy())
	return nil
}
