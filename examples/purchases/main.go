// Purchases: CIP on non-image data — the Purchase-50 regime, where two
// retailers federate an MLP over sparse binary purchase-history vectors.
// Demonstrates the vector perturbation path (t is optimized from random
// noise of the same dimension as x; paper Fig. 2's non-image note).
//
//	go run ./examples/purchases
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/cip-fl/cip/internal/attacks"
	"github.com/cip-fl/cip/internal/core"
	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/model"
	"github.com/cip-fl/cip/internal/nn"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		retailers = 2
		rounds    = 15
		seed      = 11
	)
	d, err := datasets.Load(datasets.Purchase50, datasets.Quick, seed)
	if err != nil {
		return err
	}
	fmt.Printf("scenario: %d retailers, %s (%d-dimensional binary baskets, %d shopper classes)\n",
		retailers, d.Name, d.Train.In.C, d.Train.NumClasses)

	rng := rand.New(rand.NewSource(seed))
	shards := datasets.PartitionIID(d.Train, retailers, rng)

	cfg := core.TrainConfig{
		Alpha: 0.9, LambdaT: 1e-6, LambdaM: 0.3, PerturbLR: 0.02,
		BatchSize: 32, LR: fl.DecaySchedule(0.04, rounds), Momentum: 0.9,
	}
	var clients []fl.Client
	var retailersCIP []*core.Client
	var initial []float64
	for i := 0; i < retailers; i++ {
		dual := core.NewDualChannelModel(rand.New(rand.NewSource(seed+1)), model.MLP,
			d.Train.In, d.Train.NumClasses)
		if initial == nil {
			initial = nn.FlattenParams(dual.Params())
		}
		c := core.NewClient(i, dual, shards[i], cfg, core.BlendSeed(seed, i),
			rand.New(rand.NewSource(seed+int64(10+i))))
		clients = append(clients, c)
		retailersCIP = append(retailersCIP, c)
	}
	srv := fl.NewServer(initial, clients...)
	fmt.Printf("training CIP for %d rounds...\n", rounds)
	if err := srv.Run(rounds); err != nil {
		return err
	}

	evalDual := core.NewDualChannelModel(rand.New(rand.NewSource(seed+1)), model.MLP,
		d.Train.In, d.Train.NumClasses)
	if err := nn.SetFlatParams(evalDual.Params(), srv.Global()); err != nil {
		return err
	}
	for i, r := range retailersCIP {
		m := core.NewCIPModel(evalDual, r.Perturbation().T, cfg.Alpha)
		fmt.Printf("retailer %d: test accuracy with its own t = %.3f\n",
			i, fl.Evaluate(m, d.Test, 64))
	}

	// Attack retailer 0's membership with three output-based attacks.
	members, nonMembers := datasets.MembershipSplit(shards[0], d.Test, 120,
		rand.New(rand.NewSource(seed+5)))
	probe := core.NewCIPModel(evalDual, retailersCIP[0].Perturbation().T, cfg.Alpha)
	probe = probe.WithT(probe.ZeroT())
	attackRNG := rand.New(rand.NewSource(seed + 6))
	fmt.Printf("\nattacks against retailer 0 (without its secret t):\n")
	fmt.Printf("  Ob-Label:   %.3f\n", attacks.ObLabel(probe, members, nonMembers).Accuracy())
	fmt.Printf("  Ob-MALT:    %.3f\n", attacks.ObMALT(probe, members, nonMembers).Accuracy())
	fmt.Printf("  Ob-BlindMI: %.3f\n", attacks.ObBlindMI(probe, members, nonMembers, attackRNG).Accuracy())
	fmt.Println("(≈0.5 means the attacker cannot tell members from non-members)")
	return nil
}
