// Non-iid: the paper's RQ2 scenario — CIP not only defends, its
// personalized perturbations mitigate client heterogeneity. This example
// sweeps the data distribution from non-iid to iid and prints the global
// accuracy of CIP, undefended FL, and non-collaborative local training,
// plus the EMD between clients' training-loss trajectories (paper Fig. 7).
//
//	go run ./examples/noniid
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/cip-fl/cip/internal/core"
	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/metrics"
	"github.com/cip-fl/cip/internal/model"
	"github.com/cip-fl/cip/internal/nn"
)

const (
	numClients = 4
	rounds     = 20
	seed       = 21
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	d, err := datasets.Load(datasets.CIFAR100, datasets.Quick, seed)
	if err != nil {
		return err
	}
	total := d.Train.NumClasses
	fmt.Printf("%-18s  %-10s  %-10s  %-10s  %s\n",
		"classes/client", "CIP", "no defense", "local", "EMD(cip/nodef)")

	for _, ncc := range []int{total / 5, total / 2, total} {
		cipAcc, cipEMD, err := runCIPFed(d, ncc)
		if err != nil {
			return err
		}
		nodefAcc, nodefEMD, err := runLegacyFed(d, ncc)
		if err != nil {
			return err
		}
		localAcc, err := runLocal(d, ncc)
		if err != nil {
			return err
		}
		tag := fmt.Sprintf("%d", ncc)
		if ncc == total {
			tag += " (iid)"
		}
		fmt.Printf("%-18s  %-10.3f  %-10.3f  %-10.3f  %.3f / %.3f\n",
			tag, cipAcc, nodefAcc, localAcc, cipEMD, nodefEMD)
	}
	fmt.Println("\nReading the table: local training only wins in the extreme non-iid")
	fmt.Println("corner where each client's task is trivially small; as the distribution")
	fmt.Println("approaches iid, federation dominates and local training collapses.")
	fmt.Println("CIP tracks the undefended federation's accuracy while its personalized")
	fmt.Println("perturbations pull client loss distributions together (lower EMD).")
	return nil
}

func runCIPFed(d *datasets.Data, ncc int) (acc, emd float64, err error) {
	rng := rand.New(rand.NewSource(seed))
	shards := datasets.PartitionByClass(d.Train, numClients, ncc, rng)
	cfg := core.TrainConfig{
		Alpha: 0.3, LambdaT: 1e-6, LambdaM: 0.3, PerturbLR: 0.02,
		BatchSize: 16, LR: fl.DecaySchedule(0.04, rounds), Momentum: 0.9,
	}
	var clients []fl.Client
	var cips []*core.Client
	var initial []float64
	for i := 0; i < numClients; i++ {
		dual := core.NewDualChannelModel(rand.New(rand.NewSource(seed+1)), model.VGG,
			d.Train.In, d.Train.NumClasses)
		if initial == nil {
			initial = nn.FlattenParams(dual.Params())
		}
		c := core.NewClient(i, dual, shards[i], cfg, core.BlendSeed(seed, i),
			rand.New(rand.NewSource(seed+int64(10+i))))
		clients = append(clients, c)
		cips = append(cips, c)
	}
	rec := &fl.HistoryRecorder{}
	srv := fl.NewServer(initial, clients...)
	srv.Observers = append(srv.Observers, rec)
	if err := srv.Run(rounds); err != nil {
		return 0, 0, err
	}
	evalDual := core.NewDualChannelModel(rand.New(rand.NewSource(seed+1)), model.VGG,
		d.Train.In, d.Train.NumClasses)
	if err := nn.SetFlatParams(evalDual.Params(), srv.Global()); err != nil {
		return 0, 0, err
	}
	for _, c := range cips {
		m := core.NewCIPModel(evalDual, c.Perturbation().T, cfg.Alpha)
		acc += fl.Evaluate(m, d.Test, 64) / numClients
	}
	return acc, lossEMD(rec), nil
}

func runLegacyFed(d *datasets.Data, ncc int) (acc, emd float64, err error) {
	rng := rand.New(rand.NewSource(seed))
	shards := datasets.PartitionByClass(d.Train, numClients, ncc, rng)
	build := func() nn.Layer {
		return model.NewClassifier(rand.New(rand.NewSource(seed+1)), model.VGG,
			d.Train.In, d.Train.NumClasses)
	}
	var clients []fl.Client
	var initial []float64
	for i := 0; i < numClients; i++ {
		net := build()
		if initial == nil {
			initial = nn.FlattenParams(net.Params())
		}
		clients = append(clients, fl.NewLegacyClient(i, net, shards[i], fl.ClientConfig{
			BatchSize: 16, LR: fl.DecaySchedule(0.04, rounds), Momentum: 0.9,
		}, nil, rand.New(rand.NewSource(seed+int64(10+i)))))
	}
	rec := &fl.HistoryRecorder{}
	srv := fl.NewServer(initial, clients...)
	srv.Observers = append(srv.Observers, rec)
	if err := srv.Run(rounds); err != nil {
		return 0, 0, err
	}
	net := build()
	if err := nn.SetFlatParams(net.Params(), srv.Global()); err != nil {
		return 0, 0, err
	}
	return fl.Evaluate(net, d.Test, 64), lossEMD(rec), nil
}

func runLocal(d *datasets.Data, ncc int) (float64, error) {
	rng := rand.New(rand.NewSource(seed))
	shards := datasets.PartitionByClass(d.Train, numClients, ncc, rng)
	var acc float64
	for i, shard := range shards {
		net := model.NewClassifier(rand.New(rand.NewSource(seed+1)), model.VGG,
			d.Train.In, d.Train.NumClasses)
		opt := &nn.SGD{LR: 0.05, Momentum: 0.9}
		crng := rand.New(rand.NewSource(seed + int64(30+i)))
		for e := 0; e < rounds; e++ {
			if _, err := fl.TrainEpochs(net, opt, nil, shard,
				fl.ClientConfig{BatchSize: 16}, crng); err != nil {
				return 0, err
			}
		}
		// Each client is graded on its own classes only.
		owned := map[int]bool{}
		for _, y := range shard.Y {
			owned[y] = true
		}
		var idx []int
		for j, y := range d.Test.Y {
			if owned[y] {
				idx = append(idx, j)
			}
		}
		acc += fl.Evaluate(net, d.Test.Subset(idx), 64) / numClients
	}
	return acc, nil
}

func lossEMD(rec *fl.HistoryRecorder) float64 {
	series := make([][]float64, numClients)
	for i := range series {
		series[i] = rec.ClientLossSeries(i)
	}
	return metrics.MeanPairwiseEMD(series)
}
