// Medical: the paper's motivating scenario — hospitals collaboratively
// training a histology classifier (the CH-MNIST regime) must not let an
// adversary infer whether a given patient's image was in a hospital's
// training data (a HIPAA violation). Three hospitals federate with CIP;
// we compare the Pb-Bayes white-box attack against the undefended and the
// CIP-defended federation.
//
//	go run ./examples/medical
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/cip-fl/cip/internal/attacks"
	"github.com/cip-fl/cip/internal/core"
	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/model"
	"github.com/cip-fl/cip/internal/nn"
)

const (
	hospitals = 3
	rounds    = 40
	seed      = 7
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	d, err := datasets.Load(datasets.CHMNIST, datasets.Quick, seed)
	if err != nil {
		return err
	}
	fmt.Printf("scenario: %d hospitals, %s histology data (%d tissue classes)\n",
		hospitals, d.Name, d.Train.NumClasses)

	// Hospitals specialize: each sees only some tissue classes (non-iid).
	rng := rand.New(rand.NewSource(seed))
	shards := datasets.PartitionByClass(d.Train, hospitals, 5, rng)

	// Shadow machinery for the white-box attack.
	targetTest, shadowTest := d.Test.Split(d.Test.Len() / 2)
	build := func() nn.Layer {
		return model.NewClassifier(rand.New(rand.NewSource(seed+1)), model.VGG,
			d.Train.In, d.Train.NumClasses)
	}
	shadow, err := attacks.TrainShadow(build, shards[hospitals-1], shadowTest,
		rounds, 0.05, rand.New(rand.NewSource(seed+2)))
	if err != nil {
		return err
	}
	members, nonMembers := datasets.MembershipSplit(shards[0], targetTest, 80,
		rand.New(rand.NewSource(seed+3)))
	attackRNG := rand.New(rand.NewSource(seed + 4))

	// --- Undefended federation. ---
	var legacy []fl.Client
	var initial []float64
	for i := 0; i < hospitals; i++ {
		net := build()
		if initial == nil {
			initial = nn.FlattenParams(net.Params())
		}
		legacy = append(legacy, fl.NewLegacyClient(i, net, shards[i].Clone(), fl.ClientConfig{
			BatchSize: 16, LR: fl.DecaySchedule(0.04, rounds), Momentum: 0.9,
		}, nil, rand.New(rand.NewSource(seed+int64(10+i)))))
	}
	srv := fl.NewServer(initial, legacy...)
	if err := srv.Run(rounds); err != nil {
		return err
	}
	legacyNet := build()
	if err := nn.SetFlatParams(legacyNet.Params(), srv.Global()); err != nil {
		return err
	}
	legacyAttack := attacks.PbBayes(legacyNet, members, nonMembers, shadow, attackRNG)
	fmt.Printf("\nno defense: test accuracy %.3f, Pb-Bayes attack accuracy %.3f\n",
		fl.Evaluate(legacyNet, targetTest, 64), legacyAttack.Accuracy())

	// --- CIP federation. ---
	cfg := core.TrainConfig{
		Alpha: 0.9, LambdaT: 1e-6, LambdaM: 0.3, PerturbLR: 0.02,
		BatchSize: 16, LR: fl.DecaySchedule(0.04, rounds), Momentum: 0.9,
	}
	var cips []fl.Client
	var hospitalClients []*core.Client
	initial = nil
	for i := 0; i < hospitals; i++ {
		dual := core.NewDualChannelModel(rand.New(rand.NewSource(seed+1)), model.VGG,
			d.Train.In, d.Train.NumClasses)
		if initial == nil {
			initial = nn.FlattenParams(dual.Params())
		}
		c := core.NewClient(i, dual, shards[i], cfg, core.BlendSeed(seed, i),
			rand.New(rand.NewSource(seed+int64(20+i))))
		cips = append(cips, c)
		hospitalClients = append(hospitalClients, c)
	}
	srv = fl.NewServer(initial, cips...)
	if err := srv.Run(rounds); err != nil {
		return err
	}

	evalDual := core.NewDualChannelModel(rand.New(rand.NewSource(seed+1)), model.VGG,
		d.Train.In, d.Train.NumClasses)
	if err := nn.SetFlatParams(evalDual.Params(), srv.Global()); err != nil {
		return err
	}
	var acc float64
	for _, h := range hospitalClients {
		m := core.NewCIPModel(evalDual, h.Perturbation().T, cfg.Alpha)
		acc += fl.Evaluate(m, targetTest, 64)
	}
	acc /= hospitals

	// The attacker queries the global model without hospital 0's secret t.
	probe := core.NewCIPModel(evalDual, hospitalClients[0].Perturbation().T, cfg.Alpha)
	probe = probe.WithT(probe.ZeroT())
	cipAttack := attacks.PbBayes(probe, members, nonMembers, shadow, attackRNG)
	fmt.Printf("with CIP:   test accuracy %.3f, Pb-Bayes attack accuracy %.3f\n",
		acc, cipAttack.Accuracy())
	fmt.Println("\nCIP pushes the white-box attack to random guessing; at this miniature")
	fmt.Println("scale it costs some diagnostic accuracy (the gap closes with training).")
	return nil
}
