package cip_test

// Benchmarks that regenerate the paper's evaluation artifacts, one per
// table and figure (DESIGN.md §4 maps ids to artifacts). Each benchmark
// iteration runs the full experiment at Quick scale; `go test -bench=.`
// therefore reproduces the entire evaluation. The printed tables land in
// experiments_quick.txt via cmd/cipbench; here the Rows are only sanity-
// checked so the benchmark numbers measure experiment cost.

import (
	"testing"

	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/experiments"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := experiments.Config{Scale: datasets.Quick, Seed: 1}
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Run(id, cfg)
		if err != nil {
			b.Fatalf("experiment %s: %v", id, err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatalf("experiment %s produced no rows", id)
		}
	}
}

// BenchmarkFig1LossDistribution regenerates Fig. 1 (member vs non-member
// loss distributions before/after CIP).
func BenchmarkFig1LossDistribution(b *testing.B) { benchExperiment(b, "fig1") }

// BenchmarkTable1InternalSetup regenerates Table I (internal-adversary
// setup grid: clients × architectures).
func BenchmarkTable1InternalSetup(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkTable2ExternalSetup regenerates Table II (external-adversary
// per-dataset setup).
func BenchmarkTable2ExternalSetup(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkFig4ClientsSweep regenerates Fig. 4 (defense comparison across
// client counts under internal adversaries).
func BenchmarkFig4ClientsSweep(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5ModelEpsSweep regenerates Fig. 5 (architectures × DP ε).
func BenchmarkFig5ModelEpsSweep(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6DefenseComparison regenerates Fig. 6 (external adversary,
// CH-MNIST, all five baseline defenses across privacy budgets).
func BenchmarkFig6DefenseComparison(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkTable3Heterogeneity regenerates Table III (CIP vs no defense vs
// local training across non-iid..iid distributions).
func BenchmarkTable3Heterogeneity(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkFig7EMD regenerates Fig. 7 (EMD of client training-loss
// trajectories vs heterogeneity).
func BenchmarkFig7EMD(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8AttackSweep regenerates Fig. 8 (five external attacks vs α
// per dataset).
func BenchmarkFig8AttackSweep(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkTable4AttackPRF regenerates Table IV (precision/recall/F1 at
// α=0.7).
func BenchmarkTable4AttackPRF(b *testing.B) { benchExperiment(b, "table4") }

// BenchmarkTable5AccuracyVsAlpha regenerates Table V (test accuracy vs α).
func BenchmarkTable5AccuracyVsAlpha(b *testing.B) { benchExperiment(b, "table5") }

// BenchmarkTable6AdaptiveProbe regenerates Table VI (adaptive
// Optimization-1 probe attack).
func BenchmarkTable6AdaptiveProbe(b *testing.B) { benchExperiment(b, "table6") }

// BenchmarkTable7ActiveAlteration regenerates Table VII (adaptive
// Optimization-2 active alteration attack).
func BenchmarkTable7ActiveAlteration(b *testing.B) { benchExperiment(b, "table7") }

// BenchmarkTable8SeedKnowledge regenerates Table VIII (adaptive
// Knowledge-1 public-seed attack vs SSIM).
func BenchmarkTable8SeedKnowledge(b *testing.B) { benchExperiment(b, "table8") }

// BenchmarkTable9PartialData regenerates Table IX (adaptive Knowledge-2
// partial-training-data attack).
func BenchmarkTable9PartialData(b *testing.B) { benchExperiment(b, "table9") }

// BenchmarkKnowledge3SubstituteT regenerates the §V-D Knowledge-3
// substitute-perturbation experiment.
func BenchmarkKnowledge3SubstituteT(b *testing.B) { benchExperiment(b, "k3") }

// BenchmarkTable10InverseMI regenerates Table X (adaptive Knowledge-4
// inverse membership inference attack).
func BenchmarkTable10InverseMI(b *testing.B) { benchExperiment(b, "table10") }

// BenchmarkTable11Overhead regenerates Table XI (parameter and
// convergence overhead of CIP).
func BenchmarkTable11Overhead(b *testing.B) { benchExperiment(b, "table11") }

// BenchmarkAblation runs the design-choice ablation (dual channel,
// Step I, λ_m) that DESIGN.md §5 calls out.
func BenchmarkAblation(b *testing.B) { benchExperiment(b, "ablation") }

// BenchmarkTheorem1 empirically validates the §III-C adversarial-advantage
// bound on a trained CIP model.
func BenchmarkTheorem1(b *testing.B) { benchExperiment(b, "theorem1") }
