module github.com/cip-fl/cip

go 1.22
